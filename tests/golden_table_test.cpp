// Golden-table regression lock: the deterministic text blocks of the
// paper artifacts — the Figure 11 geomean-IPC table and the Table III
// equal-area table — must reproduce the committed goldens under
// tests/goldens/ byte-for-byte, at every thread count.  A refactor
// that changes one digit (a seed, a sweep order, a solver tweak) or
// one space (a renderer or TextTable change) fails here instead of
// silently republishing a different result.
//
// Regenerating after an *intended* change: build the benches, then
//   ./bench_fig11_ipc --cap 2000   (table through "Shape checks" line)
//   ./bench_table3_equal_area
// and paste the corresponding block over the golden file, preserving
// the trailing newline.  The blocks are exactly what renderFig11 /
// renderTable3 return, so the bench output is the golden.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "harness/figures.hh"

namespace {

using namespace rrs;

std::string
golden(const std::string &name)
{
    const std::string path = std::string(RRS_GOLDEN_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing golden " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

class GoldenTables : public ::testing::TestWithParam<unsigned>
{
};

// The fig11 bench's sweep at --cap 2000: the full workload suite over
// the paper's seven sizes, audit off so the Debug/RRS_AUDIT=1 CI lane
// compares the same numbers the Release bench prints.
TEST_P(GoldenTables, Fig11MatchesGolden)
{
    const auto m = harness::parseSweepMatrix(R"({
        "schemes": ["baseline", "reuse"],
        "rf_sizes": [48, 56, 64, 72, 80, 96, 112],
        "cap": 2000,
        "audit": false
    })");
    harness::SweepRunner runner(GetParam());
    auto grid = harness::outcomePairGrid(
        runner, workloads::allWorkloads(), m, 0);
    EXPECT_EQ(harness::renderFig11(m.rfSizes, grid),
              golden("fig11_cap2000.txt"))
        << "fig11 block diverged from tests/goldens/fig11_cap2000.txt "
           "(threads=" << GetParam() << ")";
}

TEST_P(GoldenTables, Table3MatchesGolden)
{
    const area::AreaModel model;
    const std::vector<std::uint32_t> sizes = {48, 56, 64, 72,
                                              80, 96, 112};
    EXPECT_EQ(harness::renderTable3(model, sizes, GetParam()),
              golden("table3.txt"))
        << "table3 block diverged from tests/goldens/table3.txt "
           "(threads=" << GetParam() << ")";
}

INSTANTIATE_TEST_SUITE_P(Threads, GoldenTables,
                         ::testing::Values(1u, 2u, 4u),
                         [](const auto &info) {
                             return "t" + std::to_string(info.param);
                         });

} // namespace
