// Unit tests for the baseline (release-on-commit) renamer.

#include <gtest/gtest.h>

#include "rename/baseline.hh"

namespace {

using namespace rrs;
using namespace rrs::rename;

trace::DynInst
makeInst(isa::Opcode op, isa::RegId dest, isa::RegId s0 = {},
         isa::RegId s1 = {}, Addr pc = 0x1000)
{
    trace::DynInst di;
    di.si.op = op;
    di.si.dest = dest;
    di.si.srcs[0] = s0;
    di.si.srcs[1] = s1;
    di.pc = pc;
    return di;
}

trace::DynInst
addInst(int d, int a, int b)
{
    return makeInst(isa::Opcode::Add, isa::intReg(static_cast<LogRegIndex>(d)),
                    isa::intReg(static_cast<LogRegIndex>(a)),
                    isa::intReg(static_cast<LogRegIndex>(b)));
}

TEST(BaselineRenamer, FreshAllocationPerDest)
{
    BaselineRenamer rn(BaselineParams{40, 40});
    EXPECT_EQ(rn.freeRegs(RegClass::Int), 8u);

    auto r1 = rn.rename(addInst(1, 2, 3));
    ASSERT_TRUE(r1.success);
    EXPECT_TRUE(r1.hasDest);
    EXPECT_EQ(rn.freeRegs(RegClass::Int), 7u);

    auto r2 = rn.rename(addInst(1, 1, 3));
    ASSERT_TRUE(r2.success);
    // The consumer sees the previous producer's register.
    EXPECT_EQ(r2.srcTags[0], r1.destTag);
    EXPECT_NE(r2.destTag, r1.destTag);
    EXPECT_FALSE(r2.reused);
}

TEST(BaselineRenamer, SourceMappingThroughMapTable)
{
    BaselineRenamer rn(BaselineParams{64, 64});
    // Before any renames, logical register i maps to physical i.
    auto r = rn.rename(addInst(5, 6, 7));
    EXPECT_EQ(r.srcTags[0].reg, 6);
    EXPECT_EQ(r.srcTags[1].reg, 7);
    EXPECT_EQ(r.srcTags[0].version, 0);
}

TEST(BaselineRenamer, ZeroRegisterNeverRenames)
{
    BaselineRenamer rn(BaselineParams{40, 40});
    auto free0 = rn.freeRegs(RegClass::Int);
    auto r = rn.rename(makeInst(isa::Opcode::Add,
                                isa::intReg(isa::zeroReg),
                                isa::intReg(isa::zeroReg),
                                isa::intReg(2)));
    EXPECT_TRUE(r.success);
    EXPECT_FALSE(r.hasDest);
    EXPECT_FALSE(r.srcTags[0].valid());
    EXPECT_TRUE(r.srcTags[1].valid());
    EXPECT_EQ(rn.freeRegs(RegClass::Int), free0);
}

TEST(BaselineRenamer, StallWhenFreeListEmptyWithoutSideEffects)
{
    BaselineRenamer rn(BaselineParams{34, 34});
    auto r1 = rn.rename(addInst(1, 2, 3));
    auto r2 = rn.rename(addInst(2, 2, 3));
    ASSERT_TRUE(r1.success);
    ASSERT_TRUE(r2.success);
    EXPECT_EQ(rn.freeRegs(RegClass::Int), 0u);

    auto before = rn.mapping(RegClass::Int, 3);
    auto r3 = rn.rename(addInst(3, 1, 2));
    EXPECT_FALSE(r3.success);
    EXPECT_EQ(rn.mapping(RegClass::Int, 3), before);
    EXPECT_EQ(rn.historyPosition(), r2.endToken);
}

TEST(BaselineRenamer, CommitReleasesPreviousMapping)
{
    BaselineRenamer rn(BaselineParams{40, 40});
    auto r1 = rn.rename(addInst(1, 2, 3));
    EXPECT_EQ(rn.freeRegs(RegClass::Int), 7u);
    rn.commit(r1);
    // The old physical register for x1 (identity: P1) is now free.
    EXPECT_EQ(rn.freeRegs(RegClass::Int), 8u);
}

TEST(BaselineRenamer, SquashRestoresMapAndFreeList)
{
    BaselineRenamer rn(BaselineParams{40, 40});
    auto before_map = rn.mapping(RegClass::Int, 1);
    auto before_free = rn.freeRegs(RegClass::Int);
    auto token = rn.historyPosition();

    auto r1 = rn.rename(addInst(1, 2, 3));
    auto r2 = rn.rename(addInst(1, 1, 3));
    ASSERT_TRUE(r1.success && r2.success);
    EXPECT_EQ(rn.freeRegs(RegClass::Int), before_free - 2);

    EXPECT_EQ(rn.squashTo(token), 0u);
    EXPECT_EQ(rn.mapping(RegClass::Int, 1), before_map);
    EXPECT_EQ(rn.freeRegs(RegClass::Int), before_free);
}

TEST(BaselineRenamer, PartialSquashKeepsOlder)
{
    BaselineRenamer rn(BaselineParams{40, 40});
    auto r1 = rn.rename(addInst(1, 2, 3));
    auto mid = rn.historyPosition();
    auto r2 = rn.rename(addInst(1, 1, 3));
    ASSERT_TRUE(r2.success);

    rn.squashTo(mid);
    EXPECT_EQ(rn.mapping(RegClass::Int, 1), r1.destTag);
}

TEST(BaselineRenamer, FpAndIntFilesAreDecoupled)
{
    BaselineRenamer rn(BaselineParams{34, 40});
    rn.rename(addInst(1, 2, 3));
    rn.rename(addInst(2, 2, 3));
    EXPECT_EQ(rn.freeRegs(RegClass::Int), 0u);
    // FP still renames fine.
    auto rf = rn.rename(makeInst(isa::Opcode::Fadd, isa::fpReg(1),
                                 isa::fpReg(2), isa::fpReg(3)));
    EXPECT_TRUE(rf.success);
    EXPECT_EQ(rf.destTag.cls, RegClass::Float);
    // An int dest stalls.
    EXPECT_FALSE(rn.rename(addInst(3, 1, 2)).success);
}

TEST(BaselineRenamer, LongRenameCommitStream)
{
    BaselineRenamer rn(BaselineParams{48, 48});
    std::deque<RenameResult> rob;
    std::uint64_t renamed = 0, committed = 0;
    for (int i = 0; i < 10000; ++i) {
        auto r = rn.rename(addInst(1 + (i % 8), 2, 3));
        if (r.success) {
            rob.push_back(r);
            ++renamed;
        }
        if (rob.size() > 12 || !r.success) {
            if (!rob.empty()) {
                rn.commit(rob.front());
                rob.pop_front();
                ++committed;
            }
        }
    }
    EXPECT_GT(renamed, 9000u);
    EXPECT_GE(renamed, committed);
    // Free list must be consistent: total = free + in-flight + mapped.
    EXPECT_EQ(rn.freeRegs(RegClass::Int) + rob.size() + 32 +
                  (renamed - committed - rob.size()),
              48u + (renamed - committed - rob.size()));
}

TEST(BaselineRenamer, MaxVersionsIsOne)
{
    BaselineRenamer rn(BaselineParams{40, 40});
    EXPECT_EQ(rn.maxVersions(), 1u);
    auto idx = rn.tagIndexer();
    EXPECT_EQ(idx.size(), 2u * 40u * 1u);
}

} // namespace
