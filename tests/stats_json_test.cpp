// Round-trip tests for the machine-readable stats export: build a
// stats tree, dump it with Group::dumpJson, parse it back with the
// obs jsonlite parser, and compare against the in-memory values.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "obs/jsonlite.hh"
#include "stats/stats.hh"

namespace {

using namespace rrs;
using obs::json::Value;

TEST(JsonLite, ParsesScalarsAndStructure)
{
    Value v;
    std::string err;
    ASSERT_TRUE(obs::json::parse(
        R"({"a": 1.5, "b": [1, 2, 3], "c": {"d": "x\ny", "e": true, "f": null}})",
        v, &err))
        << err;
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.at("a").num, 1.5);
    ASSERT_EQ(v.at("b").arr.size(), 3u);
    EXPECT_DOUBLE_EQ(v.at("b").arr[2].num, 3.0);
    EXPECT_EQ(v.at("c").at("d").str, "x\ny");
    EXPECT_TRUE(v.at("c").at("e").boolean);
    EXPECT_TRUE(v.at("c").at("f").isNull());
}

TEST(JsonLite, RejectsMalformedInput)
{
    Value v;
    std::string err;
    EXPECT_FALSE(obs::json::parse("{\"a\": }", v, &err));
    EXPECT_FALSE(obs::json::parse("[1, 2", v, &err));
    EXPECT_FALSE(obs::json::parse("{\"a\": 1} trailing", v, &err));
    EXPECT_FALSE(obs::json::parse("", v, &err));
}

TEST(StatsJson, GroupRoundTrip)
{
    stats::Group root("root");
    stats::Scalar s(&root, "insts", "committed \"instructions\"");
    stats::Average a(&root, "wall", "wall seconds");
    stats::Distribution d(&root, "ipc", "ipc percent");
    stats::TimeSeries ts(&root, "occupancy", "rob occupancy");
    stats::Group child("core", &root);
    stats::Scalar cs(&child, "cycles", "cycles");

    s += 12345.0;
    a.sample(0.5);
    a.sample(1.5);
    d.sample(7);
    d.sample(7);
    d.sample(42);
    ts.sample(100, 3.0);
    ts.sample(200, 5.25);
    cs += 99.0;

    std::ostringstream os;
    root.dumpJson(os);

    Value v;
    std::string err;
    ASSERT_TRUE(obs::json::parse(os.str(), v, &err))
        << err << "\n" << os.str();

    // Scalar: value and the escaped description survive.
    EXPECT_DOUBLE_EQ(v.at("insts").at("value").num, 12345.0);
    EXPECT_EQ(v.at("insts").at("desc").str,
              "committed \"instructions\"");

    // Average: mean/samples/min/max.
    EXPECT_DOUBLE_EQ(v.at("wall").at("mean").num, 1.0);
    EXPECT_DOUBLE_EQ(v.at("wall").at("samples").num, 2.0);
    EXPECT_DOUBLE_EQ(v.at("wall").at("min").num, 0.5);
    EXPECT_DOUBLE_EQ(v.at("wall").at("max").num, 1.5);

    // Distribution: summary plus the per-bucket counts.
    EXPECT_DOUBLE_EQ(v.at("ipc").at("samples").num, 3.0);
    EXPECT_DOUBLE_EQ(v.at("ipc").at("min").num, 7.0);
    EXPECT_DOUBLE_EQ(v.at("ipc").at("max").num, 42.0);
    EXPECT_DOUBLE_EQ(v.at("ipc").at("counts").at("7").num, 2.0);
    EXPECT_DOUBLE_EQ(v.at("ipc").at("counts").at("42").num, 1.0);

    // Time series: points as [tick, value] pairs, in order.
    const Value &pts = v.at("occupancy").at("points");
    ASSERT_EQ(pts.arr.size(), 2u);
    EXPECT_DOUBLE_EQ(pts.arr[0].arr[0].num, 100.0);
    EXPECT_DOUBLE_EQ(pts.arr[0].arr[1].num, 3.0);
    EXPECT_DOUBLE_EQ(pts.arr[1].arr[1].num, 5.25);

    // Child group nests as an object.
    EXPECT_DOUBLE_EQ(v.at("core").at("cycles").at("value").num, 99.0);
}

TEST(StatsJson, FullPrecisionAndNonFinite)
{
    stats::Group root("root");
    stats::Scalar pi(&root, "pi", "full precision");
    stats::Average empty(&root, "empty", "no samples yet");
    pi += 3.14159265358979312;  // closest double to pi

    std::ostringstream os;
    root.dumpJson(os);
    Value v;
    ASSERT_TRUE(obs::json::parse(os.str(), v));

    // %.17g round-trips doubles exactly.
    EXPECT_EQ(v.at("pi").at("value").num, 3.14159265358979312);
    // An empty Average has no min/max; non-finite values must emit
    // valid JSON (null), not bare inf/nan tokens.
    EXPECT_TRUE(v.at("empty").at("min").isNull() ||
                std::isfinite(v.at("empty").at("min").num));
}

TEST(StatsJson, TextAndJsonCarryTheSameSummary)
{
    // The satellite fix: the text dump of a Distribution reports the
    // same count/min/max/mean the JSON does.
    stats::Group root("root");
    stats::Distribution d(&root, "lat", "latency");
    d.sample(3);
    d.sample(9);
    d.sample(9);

    std::ostringstream text;
    root.dump(text);
    EXPECT_NE(text.str().find("lat::samples 3"), std::string::npos)
        << text.str();
    EXPECT_NE(text.str().find("lat::min 3"), std::string::npos);
    EXPECT_NE(text.str().find("lat::max 9"), std::string::npos);
    EXPECT_NE(text.str().find("lat::mean 7"), std::string::npos);

    std::ostringstream js;
    root.dumpJson(js);
    Value v;
    ASSERT_TRUE(obs::json::parse(js.str(), v));
    EXPECT_DOUBLE_EQ(v.at("lat").at("samples").num, 3.0);
    EXPECT_DOUBLE_EQ(v.at("lat").at("min").num, 3.0);
    EXPECT_DOUBLE_EQ(v.at("lat").at("max").num, 9.0);
}

TEST(JsonEscape, QuotesEveryHostileCharacter)
{
    // The shared escaper behind every JSON export: quotes, backslashes,
    // newlines, tabs and raw control bytes must round-trip through the
    // parser; plain text must stay untouched.
    const std::string hostile =
        "quote\" slash\\ nl\n tab\t cr\r bell\x07 plain";
    const std::string quoted = stats::jsonQuoted(hostile);
    EXPECT_EQ(quoted.front(), '"');
    EXPECT_EQ(quoted.back(), '"');
    EXPECT_EQ(quoted.find('\n'), std::string::npos) << quoted;

    Value v;
    std::string err;
    ASSERT_TRUE(obs::json::parse(quoted, v, &err)) << err;
    EXPECT_EQ(v.str, hostile);

    std::ostringstream os;
    stats::jsonEscape(os, "x\x01y");
    EXPECT_EQ(os.str(), "\"x\\u0001y\"");
}

TEST(StatsSchema, EveryStatSelfDescribes)
{
    stats::Group root("root");
    stats::Scalar insts(&root, "insts", "committed instructions",
                        "insts");
    stats::Average wall(&root, "wall", "run wall clock", "seconds");
    stats::Distribution ipc(&root, "ipcPct", "ipc percent", "percent");
    stats::TimeSeries occ(&root, "occupancy", "rob occupancy", "insts");
    stats::Group child("core", &root);
    stats::Scalar cycles(&child, "cycles", "cycles simulated", "cycles");
    stats::Scalar bare(&root, "bare", "no unit given");

    EXPECT_EQ(insts.unit(), "insts");
    EXPECT_EQ(bare.unit(), "");
    EXPECT_STREQ(insts.kind(), "counter");
    EXPECT_STREQ(wall.kind(), "gauge");
    EXPECT_STREQ(ipc.kind(), "distribution");
    EXPECT_STREQ(occ.kind(), "timeseries");

    std::ostringstream os;
    root.dumpSchema(os);
    Value v;
    std::string err;
    ASSERT_TRUE(obs::json::parse(os.str(), v, &err))
        << err << "\n" << os.str();

    // Flat object keyed by dotted path (root group included), values
    // {kind, unit, desc}.
    EXPECT_EQ(v.at("root.insts").at("kind").str, "counter");
    EXPECT_EQ(v.at("root.insts").at("unit").str, "insts");
    EXPECT_EQ(v.at("root.insts").at("desc").str,
              "committed instructions");
    EXPECT_EQ(v.at("root.wall").at("kind").str, "gauge");
    EXPECT_EQ(v.at("root.ipcPct").at("kind").str, "distribution");
    EXPECT_EQ(v.at("root.occupancy").at("kind").str, "timeseries");
    EXPECT_EQ(v.at("root.core.cycles").at("kind").str, "counter");
    EXPECT_EQ(v.at("root.core.cycles").at("unit").str, "cycles");
    EXPECT_EQ(v.at("root.bare").at("unit").str, "");
}

TEST(StatsSchema, HostileNamesStayValidJson)
{
    stats::Group root("root");
    stats::Scalar evil(&root, "name\"with\\quotes",
                       "desc with \"quotes\" and\nnewline", "u\"nit");
    std::ostringstream os;
    root.dumpSchema(os);
    Value v;
    std::string err;
    ASSERT_TRUE(obs::json::parse(os.str(), v, &err))
        << err << "\n" << os.str();
    EXPECT_EQ(v.at("root.name\"with\\quotes").at("desc").str,
              "desc with \"quotes\" and\nnewline");
    EXPECT_EQ(v.at("root.name\"with\\quotes").at("unit").str, "u\"nit");
}

} // namespace
