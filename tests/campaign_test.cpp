// Campaign manifests and the resumable ledger DAG
// (harness/campaign.hh): parse-time diagnostics, node sharing between
// figures, the interrupt/resume contract (a ledger built in pieces is
// byte-identical to one built in a single run, at every thread count),
// the 100%-hit re-run, and the report's figure blocks matching the
// direct renderer output byte for byte.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "harness/campaign.hh"
#include "harness/figures.hh"
#include "harness/report.hh"

namespace {

using namespace rrs;
using harness::CampaignManifest;
using harness::CampaignOptions;
using harness::CampaignPlan;
using harness::Ledger;

// Small but real: the full media suite over two sizes, 500 insts per
// run — 16 nodes per sweep figure, well under a second end to end.
const char *manifestJson = R"({
  "name": "test-campaign",
  "cap": 500,
  "figures": [
    {"figure": "fig11", "kind": "fig11",
     "matrix": {"suite": "media", "schemes": ["baseline", "reuse"],
                "rf_sizes": [48, 64]}},
    {"figure": "fig10", "kind": "fig10",
     "matrix": {"suite": "media", "schemes": ["baseline", "reuse"],
                "rf_sizes": [48, 64]}},
    {"figure": "table3", "kind": "table3", "sizes": [48, 64, 96]}
  ]
})";

CampaignManifest
parseManifest(const std::string &text = manifestJson)
{
    CampaignManifest m;
    std::string error;
    EXPECT_TRUE(harness::tryParseCampaignManifest(text, m, error))
        << error;
    return m;
}

std::string
parseError(const std::string &text)
{
    CampaignManifest m;
    std::string error;
    EXPECT_FALSE(harness::tryParseCampaignManifest(text, m, error));
    return error;
}

std::string
tempDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

/** Every node file of a ledger as name -> bytes. */
std::map<std::string, std::string>
nodeBytes(const Ledger &ledger)
{
    std::map<std::string, std::string> out;
    for (const auto &hex : ledger.listNodes()) {
        std::ifstream in(ledger.nodePath(hex), std::ios::binary);
        std::ostringstream text;
        text << in.rdbuf();
        out[hex] = text.str();
    }
    return out;
}

TEST(CampaignManifestTest, ParsesTheFullGrammar)
{
    const CampaignManifest m = parseManifest();
    EXPECT_EQ(m.name, "test-campaign");
    EXPECT_EQ(m.cap, 500u);
    ASSERT_EQ(m.figures.size(), 3u);
    EXPECT_EQ(m.figures[0].kind,
              harness::CampaignFigure::Kind::Fig11);
    EXPECT_EQ(m.figures[1].kind,
              harness::CampaignFigure::Kind::Fig10);
    EXPECT_EQ(m.figures[2].kind,
              harness::CampaignFigure::Kind::Table3);
    EXPECT_EQ(m.figures[0].matrix.suite, "media");
    EXPECT_EQ(m.figures[2].sizes.size(), 3u);
}

TEST(CampaignManifestTest, DiagnosticsAreRaisedAtParseTime)
{
    EXPECT_NE(parseError("[]").find("root must be an object"),
              std::string::npos);
    EXPECT_NE(parseError("{\"figures\": []}").find("'name'"),
              std::string::npos);
    EXPECT_NE(parseError("{\"name\": \"x\", \"figures\": []}")
                  .find("non-empty array"),
              std::string::npos);
    EXPECT_NE(parseError("{\"name\": \"x\", \"frobs\": 1}")
                  .find("unknown key 'frobs'"),
              std::string::npos);
    EXPECT_NE(parseError("{\"name\": \"x\", \"cap\": -5, "
                         "\"figures\": []}")
                  .find("'cap'"),
              std::string::npos);

    // Figure-level diagnostics name the offending figure.
    const std::string badKind =
        parseError("{\"name\": \"x\", \"figures\": ["
                   "{\"figure\": \"f\", \"kind\": \"fig99\"}]}");
    EXPECT_NE(badKind.find("figure 'f'"), std::string::npos);
    EXPECT_NE(badKind.find("fig10/fig11/table3"), std::string::npos);

    // The matrix itself parses fine; the kind/shape mismatch is what
    // the diagnostic must name.
    EXPECT_NE(parseError("{\"name\": \"x\", \"figures\": ["
                         "{\"figure\": \"t\", \"kind\": \"table3\", "
                         "\"matrix\": {\"schemes\": [\"baseline\", "
                         "\"reuse\"], \"rf_sizes\": [64]}}]}")
                  .find("take 'sizes', not a 'matrix'"),
              std::string::npos);
    EXPECT_NE(parseError("{\"name\": \"x\", \"figures\": ["
                         "{\"figure\": \"f\", \"kind\": \"fig11\", "
                         "\"sizes\": [48]}]}")
                  .find("take a 'matrix', not 'sizes'"),
              std::string::npos);
    EXPECT_NE(
        parseError("{\"name\": \"x\", \"figures\": ["
                   "{\"figure\": \"f\", \"kind\": \"fig11\", "
                   "\"matrix\": {\"schemes\": [\"baseline\"], "
                   "\"rf_sizes\": [48]}}]}")
            .find("exactly two scheme columns"),
        std::string::npos);
    EXPECT_NE(
        parseError("{\"name\": \"x\", \"figures\": ["
                   "{\"figure\": \"f\", \"kind\": \"fig11\", "
                   "\"matrix\": {\"suite\": \"nope\", \"schemes\": "
                   "[\"baseline\", \"reuse\"], \"rf_sizes\": [48]}}]}")
            .find("unknown suite 'nope'"),
        std::string::npos);

    // A broken embedded matrix surfaces the sweep-matrix diagnostic
    // under the figure's name.
    const std::string badMatrix =
        parseError("{\"name\": \"x\", \"figures\": ["
                   "{\"figure\": \"f\", \"kind\": \"fig11\", "
                   "\"matrix\": {\"schemes\": [\"baseline\", "
                   "\"nosuch\"], \"rf_sizes\": [48]}}]}");
    EXPECT_NE(badMatrix.find("figure 'f'"), std::string::npos);
    EXPECT_NE(badMatrix.find("unknown rename scheme"),
              std::string::npos);

    // Duplicate figure names would make the sidecar ambiguous.
    EXPECT_NE(
        parseError("{\"name\": \"x\", \"figures\": ["
                   "{\"figure\": \"t\", \"kind\": \"table3\", "
                   "\"sizes\": [48]},"
                   "{\"figure\": \"t\", \"kind\": \"table3\", "
                   "\"sizes\": [64]}]}")
            .find("duplicate figure name 't'"),
        std::string::npos);
}

TEST(CampaignPlanTest, FiguresWithTheSameMatrixShareEveryNode)
{
    const CampaignPlan plan =
        harness::planCampaign(parseManifest(), CampaignOptions{});
    ASSERT_EQ(plan.figures.size(), 3u);

    // media (4 workloads) x 2 sizes x 2 schemes = 16 cells per sweep
    // figure; fig10 reuses fig11's digests, table3 is analytic.
    EXPECT_EQ(plan.figures[0].digests.size(), 16u);
    EXPECT_EQ(plan.figures[1].digests, plan.figures[0].digests);
    EXPECT_TRUE(plan.figures[2].digests.empty());
    EXPECT_EQ(plan.order.size(), 16u);
    EXPECT_EQ(plan.nodes.size(), 16u);
}

TEST(CampaignPlanTest, CapOverrideProducesDisjointDigests)
{
    const CampaignManifest m = parseManifest();
    const CampaignPlan full =
        harness::planCampaign(m, CampaignOptions{});
    CampaignOptions capped;
    capped.capOverride = 100;
    const CampaignPlan smoke = harness::planCampaign(m, capped);
    for (const auto &hex : smoke.order)
        EXPECT_EQ(full.nodes.find(hex), full.nodes.end()) << hex;
}

TEST(CampaignRunTest, InterruptedRunsResumeToTheSameBytes)
{
    const CampaignManifest m = parseManifest();
    for (unsigned threads : {1u, 2u, 4u}) {
        CampaignOptions opts;
        opts.threads = threads;

        // The reference: one uninterrupted run.
        const Ledger oneShot(
            tempDir("campaign_oneshot_t" + std::to_string(threads)));
        std::ostringstream sink;
        harness::CampaignResult r =
            harness::runCampaign(m, oneShot, opts, sink);
        EXPECT_EQ(r.totalNodes, 16u);
        EXPECT_EQ(r.simulated, 16u);
        EXPECT_TRUE(r.complete());

        // The same campaign killed after 5 nodes, then resumed.
        const Ledger pieces(
            tempDir("campaign_pieces_t" + std::to_string(threads)));
        CampaignOptions interrupted = opts;
        interrupted.maxNewNodes = 5;
        r = harness::runCampaign(m, pieces, interrupted, sink);
        EXPECT_EQ(r.simulated, 5u);
        EXPECT_EQ(r.remaining, 11u);
        EXPECT_FALSE(r.complete());

        r = harness::runCampaign(m, pieces, opts, sink);
        EXPECT_EQ(r.hits, 5u);       // untouched nodes digest-skipped
        EXPECT_EQ(r.simulated, 11u);
        EXPECT_TRUE(r.complete());

        // nodes/ is byte-identical: same files, same bytes.
        EXPECT_EQ(nodeBytes(pieces), nodeBytes(oneShot))
            << "threads=" << threads;

        // A clean re-run simulates nothing.
        r = harness::runCampaign(m, pieces, opts, sink);
        EXPECT_EQ(r.hits, 16u);
        EXPECT_EQ(r.simulated, 0u);
    }
}

TEST(CampaignReportTest, FigureBlocksMatchTheDirectRenderers)
{
    const CampaignManifest m = parseManifest();
    const Ledger ledger(tempDir("campaign_report"));
    std::ostringstream sink;
    harness::runCampaign(m, ledger, CampaignOptions{}, sink);

    std::string report, error;
    ASSERT_TRUE(harness::tryRenderCampaignReport(
        ledger, harness::ReportOptions{}, report, error))
        << error;

    // The same cells simulated directly, through the bench path.
    harness::SweepRunner runner(1);
    const auto ws = workloads::suiteWorkloads("media");
    const auto grid = harness::outcomePairGrid(
        runner, ws, m.figures[0].matrix, m.cap);
    const std::string direct =
        harness::renderFig11(m.figures[0].matrix.rfSizes, grid);

    const std::string marker = "## fig11 (fig11)\n\n```\n";
    const std::size_t at = report.find(marker);
    ASSERT_NE(at, std::string::npos) << report;
    const std::size_t start = at + marker.size();
    const std::size_t end = report.find("```", start);
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(report.substr(start, end - start), direct);

    // And fig10's block, against its renderer.
    const std::string direct10 = harness::renderFig10(
        ws, m.figures[1].matrix.rfSizes, grid);
    const std::string marker10 = "## fig10 (fig10)\n\n```\n";
    const std::size_t at10 = report.find(marker10);
    ASSERT_NE(at10, std::string::npos);
    const std::size_t start10 = at10 + marker10.size();
    const std::size_t end10 = report.find("```", start10);
    EXPECT_EQ(report.substr(start10, end10 - start10), direct10);

    // The report needs a sidecar; a bare nodes/ dir is an error that
    // says what to do about it.
    const Ledger bare(tempDir("campaign_report_bare"));
    std::string out;
    EXPECT_FALSE(harness::tryRenderCampaignReport(
        bare, harness::ReportOptions{}, out, error));
    EXPECT_NE(error.find("rrs-campaign"), std::string::npos);
}

} // namespace
