// Unit tests for the value-usage analysis (the paper's Figures 1-3
// machinery), driven by hand-written programs whose usage statistics
// are known exactly.

#include <gtest/gtest.h>

#include "emu/emulator.hh"
#include "isa/assembler.hh"
#include "trace/analysis.hh"

namespace {

using namespace rrs;
using rrs::trace::UsageReport;

UsageReport
analyze(const char *src, std::uint64_t maxInsts = 1'000'000)
{
    isa::Program p = isa::assemble(src);
    emu::Emulator e(p, "t");
    return trace::analyzeUsage(e, maxInsts);
}

TEST(UsageAnalysis, PaperFigure4Example)
{
    // The running example from the paper (Figure 4): I1,I4,I5,I6 form a
    // single-use chain on r1.  Written in rrsim assembly; x9 stands in
    // for r5 and memory ops are simplified.
    UsageReport rep = analyze(R"(
        movz x2, #7          ; init (produces x2 used by I1 and I8-ish)
        movz x3, #3
        movz x4, #5
        movz x6, =buf
        add x1, x2, x3       ; I1
        ldr x3, [x6]         ; I2
        mul x2, x3, x4       ; I3
        add x1, x1, x4       ; I4  sole consumer of I1's x1, redefines
        mul x1, x1, x1       ; I5  sole consumer of I4's x1, redefines
        mul x1, x1, x3       ; I6  sole consumer of I5's x1, redefines
        add x9, x1, x2       ; I7
        sub x2, x9, x1       ; I8
        halt
        .data
    buf:
        .word 11
    )");
    // I4, I5, I6 are sole consumers that redefine their source.
    EXPECT_EQ(rep.singleConsumerRedef, 3u);
    // I1 (of the movz-x2 value), I2 (of =buf), I7 (of I3's x2) and I8
    // (of I7's x9) are sole consumers that do not redefine.
    EXPECT_EQ(rep.singleConsumerOther, 4u);
    // Oracle reuse chains including the init instructions:
    // depths I1:1 I2:1 I4:2 I5:3 I6:4 I7:1 I8:2.
    EXPECT_EQ(rep.reusable[0], 4u);   // cap 1
    EXPECT_EQ(rep.reusable[1], 6u);   // cap 2
    EXPECT_EQ(rep.reusable[2], 6u);   // cap 3
    EXPECT_EQ(rep.reusable[3], 7u);   // unlimited
}

TEST(UsageAnalysis, SingleUseRedefCounted)
{
    // x1's value is consumed exactly once, by an instruction that also
    // redefines x1.
    UsageReport rep = analyze(R"(
        movz x1, #1
        addi x1, x1, #2
        halt
    )");
    EXPECT_EQ(rep.singleConsumerRedef, 1u);
    EXPECT_EQ(rep.singleConsumerOther, 0u);
}

TEST(UsageAnalysis, SingleUseOtherCounted)
{
    // x1's value is consumed exactly once by an instruction writing x2,
    // and x1 is later redefined (closing the value).
    UsageReport rep = analyze(R"(
        movz x1, #1
        add x2, x1, x1
        movz x1, #9
        halt
    )");
    EXPECT_EQ(rep.singleConsumerOther, 1u);
    EXPECT_EQ(rep.singleConsumerRedef, 0u);
}

TEST(UsageAnalysis, MultiConsumerNotCounted)
{
    UsageReport rep = analyze(R"(
        movz x1, #1
        add x2, x1, x1
        add x3, x1, x1
        movz x1, #0
        halt
    )");
    EXPECT_EQ(rep.singleConsumerRedef, 0u);
    EXPECT_EQ(rep.singleConsumerOther, 0u);
    // That x1 value had two consuming instructions.
    EXPECT_EQ(rep.consumersPerValue.at(2), 1u);
}

TEST(UsageAnalysis, SameRegTwiceIsOneConsumer)
{
    // mul x2, x1, x1 reads the same value twice but is ONE consumer.
    UsageReport rep = analyze(R"(
        movz x1, #3
        mul x2, x1, x1
        movz x1, #0
        halt
    )");
    EXPECT_EQ(rep.singleConsumerOther, 1u);
}

TEST(UsageAnalysis, ConsumerDistribution)
{
    UsageReport rep = analyze(R"(
        movz x1, #1     ; consumed 3 times
        add x2, x1, x1
        add x3, x1, x1
        add x4, x1, x1
        movz x1, #2     ; consumed once
        add x5, x1, x1
        movz x1, #3     ; never consumed
        movz x1, #4     ; closed at stream end, never consumed
        halt
    )");
    EXPECT_EQ(rep.consumersPerValue.at(3), 1u);
    EXPECT_GE(rep.consumersPerValue.at(0), 2u);
    EXPECT_GE(rep.valuesConsumed, 2u);
}

TEST(UsageAnalysis, StoreConsumerHasNoDestSoNoReuse)
{
    // The sole consumer is a store: counted for Fig 1/2 purposes as a
    // consumer, but it cannot reuse (no destination register).
    UsageReport rep = analyze(R"(
        movz x9, =buf
        movz x1, #5
        str x1, [x9]
        movz x1, #0
        halt
        .data
    buf:
        .space 8
    )");
    // No reuse opportunity is recorded for the store.
    EXPECT_EQ(rep.reusable[3], 0u);
}

TEST(UsageAnalysis, ChainCapsLimitReuse)
{
    // A chain of 5 single-use redefining instructions: depths 1..5.
    UsageReport rep = analyze(R"(
        movz x1, #1
        addi x1, x1, #1   ; depth 1
        addi x1, x1, #1   ; depth 2
        addi x1, x1, #1   ; depth 3
        addi x1, x1, #1   ; depth 4
        addi x1, x1, #1   ; depth 5
        halt
    )");
    EXPECT_EQ(rep.reusable[0], 3u);  // cap 1: depths restart 1,_,1,_,1
    EXPECT_EQ(rep.reusable[1], 4u);  // cap 2: 1,2,_,1,2
    EXPECT_EQ(rep.reusable[2], 4u);  // cap 3: 1,2,3,_,1
    EXPECT_EQ(rep.reusable[3], 5u);  // unlimited: all five
    // Depth decomposition of the unlimited run: 1,2,3,4,5 -> buckets
    // {1:1, 2:1, 3:1, >3:2}.
    EXPECT_EQ(rep.reuseDepthCounts[0], 1u);
    EXPECT_EQ(rep.reuseDepthCounts[1], 1u);
    EXPECT_EQ(rep.reuseDepthCounts[2], 1u);
    EXPECT_EQ(rep.reuseDepthCounts[3], 2u);
}

TEST(UsageAnalysis, ZeroRegisterIgnored)
{
    UsageReport rep = analyze(R"(
        add x1, xzr, xzr
        add xzr, x1, x1
        halt
    )");
    // Write to xzr is not a value; reads of xzr are not consumers.
    EXPECT_EQ(rep.destInsts, 1u);
}

TEST(UsageAnalysis, FractionsAreConsistent)
{
    UsageReport rep = analyze(R"(
        movz x1, #1
        addi x1, x1, #2
        addi x1, x1, #3
        add x2, x1, x1
        movz x1, #0
        halt
    )");
    EXPECT_NEAR(rep.fracSingleConsumer(),
                rep.fracSingleConsumerRedef() +
                    rep.fracSingleConsumerOther(),
                1e-12);
    double sum = 0;
    for (std::uint64_t k = 1; k <= 6; ++k)
        sum += rep.fracConsumers(k);
    EXPECT_NEAR(sum, 1.0, 1e-12);
    for (int cap = 0; cap < 3; ++cap)
        EXPECT_LE(rep.fracReusable(cap), rep.fracReusable(cap + 1));
}

TEST(UsageAnalysis, WindowCapRespected)
{
    UsageReport rep = analyze(R"(
    loop:
        addi x1, x1, #1
        b loop
    )", 1000);
    EXPECT_EQ(rep.totalInsts, 1000u);
}

} // namespace
