// Tests for the rename-stage invariant auditor (rename/audit.hh):
// clean audits on healthy renamers, detection of every seeded fault
// class (each named by its violated invariant), the allocFromBank
// exhaustion/fallback behaviour, squash-undo regressions for the
// Fig. 8 repair path, history-footprint tracking, a randomized
// rename/commit/squash interleaving over every workload's trace with
// the auditor at every commit and squash, and the harness audit hooks.

#include <gtest/gtest.h>

#include <deque>

#include "common/random.hh"
#include "harness/experiment.hh"
#include "harness/tracecache.hh"
#include "rename/audit.hh"
#include "rename/baseline.hh"
#include "rename/reuse.hh"
#include "trace/recorded.hh"
#include "workloads/workloads.hh"

namespace {

using namespace rrs;
using namespace rrs::rename;

trace::DynInst
makeInst(isa::Opcode op, isa::RegId dest, isa::RegId s0 = {},
         isa::RegId s1 = {}, Addr pc = 0x1000)
{
    trace::DynInst di;
    di.si.op = op;
    di.si.dest = dest;
    di.si.srcs[0] = s0;
    di.si.srcs[1] = s1;
    di.pc = pc;
    return di;
}

trace::DynInst
addInst(int d, int a, int b, Addr pc = 0x1000)
{
    return makeInst(isa::Opcode::Add,
                    isa::intReg(static_cast<LogRegIndex>(d)),
                    isa::intReg(static_cast<LogRegIndex>(a)),
                    isa::intReg(static_cast<LogRegIndex>(b)), pc);
}

trace::DynInst
movzInst(int d, Addr pc = 0x2000)
{
    return makeInst(isa::Opcode::Movz,
                    isa::intReg(static_cast<LogRegIndex>(d)), {}, {}, pc);
}

ReuseRenamerParams
bigShadowParams()
{
    ReuseRenamerParams p;
    p.intBanks = {32, 0, 0, 16};
    p.fpBanks = {32, 0, 0, 16};
    return p;
}

void
expectClean(RenameAuditor &auditor, const Renamer &rn, const char *why)
{
    AuditReport report = auditor.audit(rn);
    EXPECT_TRUE(report.clean()) << why << ":\n" << report.toString();
}

TEST(RenameAuditor, CleanAfterConstruction)
{
    RenameAuditor auditor;
    ReuseRenamer reuse(bigShadowParams());
    BaselineRenamer base(BaselineParams{64, 64});
    expectClean(auditor, reuse, "fresh reuse renamer");
    expectClean(auditor, base, "fresh baseline renamer");
    EXPECT_EQ(auditor.auditCount(), 2.0);
    EXPECT_EQ(auditor.violationCount(), 0.0);
}

TEST(RenameAuditor, CleanAfterMixedActivity)
{
    RenameAuditor auditor;
    ReuseRenamer rn(bigShadowParams());
    auto &tp = rn.predictor();
    tp.trainOnShadowExhausted(tp.indexFor(0x4000));

    // Allocation, redefining reuse, non-redef reuse, a repair, commits
    // and a squash: every rename action class, audited after each.
    auto r1 = rn.rename(movzInst(1, 0x4000));
    expectClean(auditor, rn, "after alloc");
    auto r2 = rn.rename(addInst(1, 1, 3));
    expectClean(auditor, rn, "after redefining reuse");
    auto r3 = rn.rename(addInst(7, 1, 9));
    expectClean(auditor, rn, "after non-redef reuse");
    auto r4 = rn.rename(addInst(8, 1, 9),
                        [](const PhysRegTag &) { return true; });
    expectClean(auditor, rn, "after repair");
    rn.commit(r1);
    expectClean(auditor, rn, "after commit 1");
    rn.commit(r2);
    expectClean(auditor, rn, "after commit 2");
    rn.squashTo(r3.token);
    expectClean(auditor, rn, "after squash");
    (void)r4;
}

// ---- Fault injection: every seeded fault class must be caught, and
// ---- the report must name the violated invariant.

TEST(RenameAuditor, CatchesFlippedReadBit)
{
    RenameAuditor auditor;
    ReuseRenamer rn(bigShadowParams());
    ASSERT_TRUE(rn.injectFault(ReuseRenamer::InjectedFault::FlipReadBit));
    AuditReport report = auditor.audit(rn);
    EXPECT_FALSE(report.clean());
    EXPECT_TRUE(report.names(AuditInvariant::ReadBitUses))
        << report.toString();
    EXPECT_GT(auditor.violationCount(), 0.0);
}

TEST(RenameAuditor, CatchesLeakedFreeRegister)
{
    RenameAuditor auditor;
    ReuseRenamer rn(bigShadowParams());
    ASSERT_TRUE(rn.injectFault(ReuseRenamer::InjectedFault::LeakFreeReg));
    AuditReport report = auditor.audit(rn);
    EXPECT_FALSE(report.clean());
    EXPECT_TRUE(report.names(AuditInvariant::FreeListPartition))
        << report.toString();
}

TEST(RenameAuditor, CatchesSkippedRefcountDrop)
{
    RenameAuditor auditor;
    ReuseRenamer rn(bigShadowParams());
    // Some real state first, so the stale count hides among live refs.
    auto r1 = rn.rename(addInst(1, 2, 3));
    rn.commit(r1);
    ASSERT_TRUE(rn.injectFault(ReuseRenamer::InjectedFault::SkipRefDrop));
    AuditReport report = auditor.audit(rn);
    EXPECT_FALSE(report.clean());
    EXPECT_TRUE(report.names(AuditInvariant::SpecRefCount))
        << report.toString();
}

TEST(RenameAuditor, CatchesDoubleFree)
{
    RenameAuditor auditor;
    ReuseRenamer rn(bigShadowParams());
    ASSERT_TRUE(rn.injectFault(ReuseRenamer::InjectedFault::DoubleFree));
    AuditReport report = auditor.audit(rn);
    EXPECT_FALSE(report.clean());
    EXPECT_TRUE(report.names(AuditInvariant::FreeListPartition))
        << report.toString();
}

#if GTEST_HAS_DEATH_TEST
TEST(RenameAuditorDeathTest, CheckPanicsWithStructuredReport)
{
    RenameAuditor auditor;
    ReuseRenamer rn(bigShadowParams());
    ASSERT_TRUE(rn.injectFault(ReuseRenamer::InjectedFault::DoubleFree));
    // The CI-facing entry names the trigger point and the invariant.
    EXPECT_DEATH(auditor.check(rn, "unit-test"),
                 "rename audit failed at unit-test.*freeListPartition");
}
#endif

// ---- allocFromBank: closest-first fallback in shadow-capacity order,
// ---- and graceful exhaustion.

TEST(ReuseRenamer, AllocFallbackWalksBanksClosestFirst)
{
    // One spare bank-0 register, then two in each shadow bank.  A cold
    // predictor wants bank 0, so allocations must drain bank 0, then
    // bank 1, then 2, then 3 — never skipping towards more shadow
    // cells than needed.
    ReuseRenamerParams p;
    p.intBanks = {33, 2, 2, 2};
    p.fpBanks = {33, 2, 2, 2};
    ReuseRenamer rn(p);

    const std::array<std::uint32_t, 7> expectBank = {0, 1, 1, 2, 2, 3, 3};
    for (std::size_t i = 0; i < expectBank.size(); ++i) {
        std::array<std::uint32_t, 4> before{};
        for (int b = 0; b < 4; ++b)
            before[static_cast<std::size_t>(b)] =
                rn.bankInUse(RegClass::Int, b);
        auto r = rn.rename(movzInst(static_cast<int>(1 + i % 8),
                                    0x3000 + 16 * static_cast<Addr>(i)));
        ASSERT_TRUE(r.success) << "allocation " << i;
        for (int b = 0; b < 4; ++b) {
            std::uint32_t grew =
                rn.bankInUse(RegClass::Int, b) -
                before[static_cast<std::size_t>(b)];
            EXPECT_EQ(grew,
                      b == static_cast<int>(
                               expectBank[static_cast<std::size_t>(i)])
                          ? 1u : 0u)
                << "allocation " << i << " bank " << b;
        }
    }
}

TEST(ReuseRenamer, ExhaustionStallsInsteadOfPanicking)
{
    ReuseRenamerParams p;
    p.intBanks = {33, 2, 2, 2};   // 7 free registers
    p.fpBanks = {33, 2, 2, 2};
    ReuseRenamer rn(p);
    RenameAuditor auditor;

    std::deque<RenameResult> inflight;
    // Distinct logical destinations so nothing is released early, and
    // distinct PCs so the cold predictor stays cold.
    for (int i = 0; i < 7; ++i) {
        auto r = rn.rename(movzInst(1 + i, 0x5000 + 16 * i));
        ASSERT_TRUE(r.success);
        inflight.push_back(r);
    }
    EXPECT_EQ(rn.freeRegs(RegClass::Int), 0u);

    // No free register and no reuse possible: a structural stall, not
    // a panic, and the stall is reported so the core can charge it.
    double stalls0 = rn.stallCount();
    auto r8 = rn.rename(movzInst(8, 0x6000));
    EXPECT_FALSE(r8.success);
    EXPECT_GT(rn.stallCount(), stalls0);
    expectClean(auditor, rn, "after exhaustion stall");

    // Draining the pipeline frees registers and renaming resumes.
    while (!inflight.empty()) {
        rn.commit(inflight.front());
        inflight.pop_front();
    }
    auto r9 = rn.rename(movzInst(8, 0x6000));
    EXPECT_TRUE(r9.success);
    expectClean(auditor, rn, "after recovery from exhaustion");
}

// ---- Squash-undo regressions for the repair path (Fig. 8).

TEST(ReuseRenamer, SquashAcrossRepairRestoresStaleAndUses)
{
    ReuseRenamer rn(bigShadowParams());
    RenameAuditor auditor;
    auto &tp = rn.predictor();
    tp.trainOnShadowExhausted(tp.indexFor(0x4000));

    rn.rename(movzInst(1, 0x4000));          // x1 -> P (bank 3)
    auto r2 = rn.rename(addInst(7, 1, 9));   // x7 reuses P: x1 stale
    ASSERT_TRUE(r2.reused);

    // The repair instruction: add x8 <- x1, x9.  Its history records,
    // in order: the repair mark, the repair's map write re-pointing x1,
    // the two source reads, and the destination map write.
    auto executed = [](const PhysRegTag &) { return true; };
    auto r3 = rn.rename(addInst(8, 1, 9), executed);
    ASSERT_EQ(r3.numRepairs, 1);
    ASSERT_EQ(r3.endToken, r3.token + 5);

    // Squash between the repair's map write and its source-read
    // entries: the reads (read bit, use counts, training hints) must
    // unwind exactly while the re-pointed map stays.
    rn.squashTo(r3.token + 2);
    expectClean(auditor, rn, "mid-instruction squash after repair write");
    EXPECT_EQ(rn.mapping(RegClass::Int, 1), r3.repairList[0].toTag);

    // Complete the squash: the stale bit and the shared register's
    // state must be exactly as before the repair instruction.
    rn.squashTo(r3.token);
    expectClean(auditor, rn, "full squash of the repair instruction");

    // Replaying the same instruction must reproduce the repair
    // verbatim: same repair count, same fresh register, same tags.
    auto r3b = rn.rename(addInst(8, 1, 9), executed);
    EXPECT_EQ(r3b.numRepairs, 1);
    EXPECT_EQ(r3b.repairUops, r3.repairUops);
    EXPECT_EQ(r3b.repairList[0].fromTag, r3.repairList[0].fromTag);
    EXPECT_EQ(r3b.repairList[0].toTag, r3.repairList[0].toTag);
    EXPECT_EQ(r3b.destTag, r3.destTag);
    EXPECT_EQ(r3b.srcTags[0], r3.srcTags[0]);
    EXPECT_EQ(r3b.srcTags[1], r3.srcTags[1]);
    expectClean(auditor, rn, "after replaying the repair");
}

TEST(ReuseRenamer, SquashRestoresReuseImpossibleHint)
{
    // A squashed first consumer that could never share the register
    // (cross-class dest) must not leave the training hint behind:
    // after the squash, the producer's predictor training must match a
    // twin renamer that never saw the consumer at all.
    const Addr producerPc = 0x4000;
    auto run = [&](bool renameAndSquashFcvt) {
        ReuseRenamer rn(bigShadowParams());
        auto p1 = rn.rename(movzInst(1, producerPc));
        if (renameAndSquashFcvt) {
            auto f = rn.rename(makeInst(isa::Opcode::Fcvt, isa::fpReg(1),
                                        isa::intReg(1)));
            rn.squashTo(f.token);
        }
        auto c1 = rn.rename(addInst(5, 1, 6));   // the real sole consumer
        auto p2 = rn.rename(movzInst(1, 0x7000)); // redefine x1
        rn.commit(p1);
        rn.commit(c1);
        rn.commit(p2);   // releases x1's first register: trains predictor
        auto &tp = rn.predictor();
        return tp.value(tp.indexFor(producerPc));
    };
    EXPECT_EQ(run(true), run(false));
}

// ---- History footprint tracking.

TEST(ReuseRenamer, HistoryPeakTracksInFlightFootprint)
{
    ReuseRenamer rn(bigShadowParams());
    EXPECT_EQ(rn.historyPeakEntries(), 0u);
    std::deque<RenameResult> inflight;
    for (int i = 0; i < 12; ++i)
        inflight.push_back(rn.rename(movzInst(1 + i % 8, 0x5000 + 16 * i)));
    // Every instruction appended at least one history entry.
    std::uint64_t peak = rn.historyPeakEntries();
    EXPECT_GE(peak, 12u);
    // Draining the pipeline keeps the lifetime peak.
    while (!inflight.empty()) {
        rn.commit(inflight.front());
        inflight.pop_front();
    }
    EXPECT_EQ(rn.historyPeakEntries(), peak);
}

TEST(BaselineRenamer, HistoryPeakTracksInFlightFootprint)
{
    BaselineRenamer rn(BaselineParams{64, 64});
    EXPECT_EQ(rn.historyPeakEntries(), 0u);
    std::deque<RenameResult> inflight;
    for (int i = 0; i < 12; ++i)
        inflight.push_back(rn.rename(movzInst(1 + i % 8, 0x5000 + 16 * i)));
    EXPECT_EQ(rn.historyPeakEntries(), 12u);
    while (!inflight.empty()) {
        rn.commit(inflight.front());
        inflight.pop_front();
    }
    EXPECT_EQ(rn.historyPeakEntries(), 12u);
}

// ---- Randomized rename/commit/squash interleaving over real traces,
// ---- audited at every commit and squash.

void
driveAudited(Renamer &rn, trace::ReplayStream &stream,
             std::uint64_t seed, RenameAuditor &auditor)
{
    Random rng(seed);
    std::deque<RenameResult> inflight;
    constexpr std::size_t maxInflight = 64;

    auto auditNow = [&](const char *when) -> bool {
        AuditReport report = auditor.audit(rn);
        EXPECT_TRUE(report.clean()) << when << ":\n" << report.toString();
        return report.clean();
    };
    auto commitOne = [&]() -> bool {
        rn.commit(inflight.front());
        inflight.pop_front();
        return auditNow("after commit");
    };

    while (true) {
        const double dice = rng.uniform();
        if (dice < 0.70 || inflight.empty()) {
            // Rename the next trace instruction.
            auto di = stream.next();
            if (!di)
                break;
            if (inflight.size() >= maxInflight && !commitOne())
                return;
            auto r = rn.rename(*di);
            if (!r.success) {
                // Structural stall: drain one instruction and retry
                // once; the instruction is dropped if it still stalls
                // (a shorter program is just as valid a schedule).
                ASSERT_FALSE(inflight.empty())
                    << "stall with an empty pipeline";
                if (!commitOne())
                    return;
                r = rn.rename(*di);
            }
            if (r.success)
                inflight.push_back(r);
        } else if (dice < 0.90) {
            if (!commitOne())
                return;
        } else {
            // Squash a random suffix of the in-flight window.
            std::size_t keep = rng.below(inflight.size() + 1);
            if (keep == inflight.size())
                continue;
            rn.squashTo(inflight[keep].token);
            inflight.resize(keep);
            if (!auditNow("after squash"))
                return;
        }
    }
    while (!inflight.empty()) {
        if (!commitOne())
            return;
    }
    auditNow("final state");
}

TEST(RenameAuditProperty, RandomizedInterleavingAllWorkloads)
{
    constexpr std::uint64_t cap = 2000;
    RenameAuditor auditor;
    const auto &ws = workloads::allWorkloads();
    ASSERT_FALSE(ws.empty());
    std::uint64_t seed = 0xa0d17ULL;
    for (const auto &w : ws) {
        // Small, shadow-heavy register files keep allocation pressure
        // (and therefore reuse, repair and stall traffic) high.
        for (int bits : {1, 2, 4}) {
            ReuseRenamerParams p;
            p.intBanks = {36, 4, 4, 4};
            p.fpBanks = {36, 4, 4, 4};
            p.counterBits = static_cast<std::uint8_t>(bits);
            ReuseRenamer rn(p);
            trace::ReplayStream stream(harness::traceCache().get(w, cap));
            driveAudited(rn, stream, seed++, auditor);
            if (HasFailure()) {
                FAIL() << "reuse renamer, workload " << w.name
                       << ", counterBits " << bits;
            }
        }
        BaselineRenamer base(BaselineParams{48, 48});
        trace::ReplayStream stream(harness::traceCache().get(w, cap));
        driveAudited(base, stream, seed++, auditor);
        if (HasFailure())
            FAIL() << "baseline renamer, workload " << w.name;
    }
    EXPECT_GT(auditor.auditCount(), 0.0);
    EXPECT_EQ(auditor.violationCount(), 0.0);
}

// ---- Harness integration: the O3 core's audit trigger points.

TEST(HarnessAudit, EveryCommitAuditingReportsThroughOutcome)
{
    const auto &w = workloads::allWorkloads().front();
    for (const auto &scheme : rename::registeredRenameSchemes()) {
        harness::RunConfig cfg = harness::schemeConfig(scheme, 64);
        cfg.maxInsts = 20000;
        cfg.obs.auditInterval = 1;   // audit after every commit
        auto out = harness::runOn(w, cfg);
        EXPECT_GT(out.auditsRun, 0.0) << "scheme " << scheme;
        EXPECT_EQ(out.auditViolations, 0.0);
        EXPECT_GT(out.historyPeak, 0.0);
    }
}

TEST(HarnessAudit, DisabledAuditingRunsNoChecks)
{
    const auto &w = workloads::allWorkloads().front();
    harness::RunConfig cfg = harness::reuseConfig(64);
    cfg.maxInsts = 5000;
    cfg.obs.auditDisabled = true;   // overrides RRS_AUDIT and defaults
    auto out = harness::runOn(w, cfg);
    EXPECT_EQ(out.auditsRun, 0.0);
    EXPECT_EQ(out.auditViolations, 0.0);
}

TEST(HarnessAudit, PeriodicAuditingAuditsLessOften)
{
    const auto &w = workloads::allWorkloads().front();
    harness::RunConfig every = harness::reuseConfig(64);
    every.maxInsts = 10000;
    every.obs.auditInterval = 1;
    harness::RunConfig sparse = every;
    sparse.obs.auditInterval = 1000;   // every 1000 cycles + squashes
    auto outEvery = harness::runOn(w, every);
    auto outSparse = harness::runOn(w, sparse);
    EXPECT_GT(outSparse.auditsRun, 0.0);
    EXPECT_LT(outSparse.auditsRun, outEvery.auditsRun);
    EXPECT_EQ(outEvery.auditViolations, 0.0);
    EXPECT_EQ(outSparse.auditViolations, 0.0);
    // Auditing is pure observation: the simulated outcome is
    // bit-identical at any interval.
    EXPECT_EQ(outEvery.sim.cycles, outSparse.sim.cycles);
    EXPECT_EQ(outEvery.sim.committedInsts, outSparse.sim.committedInsts);
}

} // namespace
