// Unit tests for the common utilities: bit manipulation, the circular
// queue, deterministic RNG and string helpers.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/atomicfile.hh"
#include "common/bitutils.hh"
#include "common/circular_queue.hh"
#include "common/random.hh"
#include "common/strutils.hh"

namespace {

using namespace rrs;

TEST(BitUtils, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ULL << 40));
    EXPECT_FALSE(isPowerOf2((1ULL << 40) + 1));
}

TEST(BitUtils, FloorCeilLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
    EXPECT_EQ(ceilLog2(1), 0u);
}

TEST(BitUtils, Align)
{
    EXPECT_EQ(alignDown(0x1234, 0x100), 0x1200u);
    EXPECT_EQ(alignUp(0x1234, 0x100), 0x1300u);
    EXPECT_EQ(alignUp(0x1200, 0x100), 0x1200u);
}

TEST(BitUtils, BitsExtraction)
{
    EXPECT_EQ(bits(0xff00, 15, 8), 0xffu);
    EXPECT_EQ(bits(0xdeadbeef, 31, 16), 0xdeadu);
    EXPECT_EQ(bits(~0ULL, 63, 0), ~0ULL);
}

TEST(CircularQueue, PushPopOrder)
{
    CircularQueue<int> q(4);
    EXPECT_TRUE(q.empty());
    q.pushBack(1);
    q.pushBack(2);
    q.pushBack(3);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.front(), 1);
    EXPECT_EQ(q.back(), 3);
    q.popFront();
    EXPECT_EQ(q.front(), 2);
    q.pushBack(4);
    q.pushBack(5);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.at(0), 2);
    EXPECT_EQ(q.at(3), 5);
}

TEST(CircularQueue, PopBackSquashesYoungest)
{
    CircularQueue<int> q(4);
    q.pushBack(10);
    q.pushBack(20);
    q.pushBack(30);
    q.popBack();
    EXPECT_EQ(q.back(), 20);
    EXPECT_EQ(q.size(), 2u);
}

TEST(CircularQueue, WrapAroundStress)
{
    CircularQueue<int> q(3);
    int next_in = 0, next_out = 0;
    for (int round = 0; round < 100; ++round) {
        while (!q.full())
            q.pushBack(next_in++);
        while (!q.empty()) {
            EXPECT_EQ(q.front(), next_out++);
            q.popFront();
        }
    }
    EXPECT_EQ(next_in, next_out);
}

TEST(Random, Deterministic)
{
    Random a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Random, ReseedRestoresSequence)
{
    Random a(7);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next64());
    a.reseed(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next64(), first[static_cast<std::size_t>(i)]);
}

TEST(Random, BelowInRange)
{
    Random r(3);
    for (int i = 0; i < 10000; ++i) {
        auto v = r.below(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Random, BetweenInclusive)
{
    Random r(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        auto v = r.between(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Random, UniformInUnitInterval)
{
    Random r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(StrUtils, Trim)
{
    EXPECT_EQ(trim("  hello  "), "hello");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("\t x \n"), "x");
}

TEST(StrUtils, Split)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(StrUtils, SplitWhitespace)
{
    auto parts = splitWhitespace("  add   x1,  x2 ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "add");
    EXPECT_EQ(parts[1], "x1,");
}

TEST(StrUtils, ParseInt)
{
    EXPECT_EQ(parseInt("42").value(), 42);
    EXPECT_EQ(parseInt("-7").value(), -7);
    EXPECT_EQ(parseInt("0x10").value(), 16);
    EXPECT_EQ(parseInt("#12").value(), 12);
    EXPECT_FALSE(parseInt("12abc").has_value());
    EXPECT_FALSE(parseInt("").has_value());
}

TEST(StrUtils, ParseDouble)
{
    EXPECT_DOUBLE_EQ(parseDouble("1.5").value(), 1.5);
    EXPECT_DOUBLE_EQ(parseDouble("-2e3").value(), -2000.0);
    EXPECT_FALSE(parseDouble("nanx").has_value());
}

TEST(AtomicFile, WritesAndCreatesParents)
{
    const std::string dir = ::testing::TempDir() + "rrs_atomicfile";
    const std::string path = dir + "/a/b/out.json";
    std::string error;
    ASSERT_TRUE(tryWriteFileAtomic(path, "{\"x\": 1}\n", error)) << error;
    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    EXPECT_EQ(ss.str(), "{\"x\": 1}\n");
    // No stray temp file at the destination.
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());
    std::filesystem::remove_all(dir);
}

TEST(AtomicFile, OverwriteReplacesWholeFile)
{
    const std::string dir = ::testing::TempDir() + "rrs_atomicfile2";
    const std::string path = dir + "/out.txt";
    std::string error;
    ASSERT_TRUE(tryWriteFileAtomic(path, "a much longer first version",
                                   error)) << error;
    ASSERT_TRUE(tryWriteFileAtomic(path, "short", error)) << error;
    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    EXPECT_EQ(ss.str(), "short");
    std::filesystem::remove_all(dir);
}

TEST(AtomicFile, MissingParentFailsWithoutCreateParents)
{
    const std::string dir = ::testing::TempDir() + "rrs_atomicfile3";
    std::string error;
    EXPECT_FALSE(tryWriteFileAtomic(dir + "/missing/out.txt", "x", error,
                                    /*createParents=*/false));
    EXPECT_FALSE(error.empty());
    std::filesystem::remove_all(dir);
}

} // namespace
