// Integration tests for the O3 core: whole-pipeline runs over real
// programs with both renamers, misprediction recovery, exception
// injection, interrupts, and determinism.

#include <gtest/gtest.h>

#include "core/o3core.hh"
#include "emu/emulator.hh"
#include "isa/assembler.hh"
#include "rename/baseline.hh"
#include "rename/reuse.hh"
#include "trace/synthetic.hh"

namespace {

using namespace rrs;

/** Everything one timing run needs, bundled. */
struct Rig
{
    mem::MemSystem mem{mem::MemSystemParams{}};
    bpred::BranchPredictor bp{bpred::BPredParams{}};

    core::SimResult
    run(rename::Renamer &rn, trace::InstStream &stream,
        core::CoreParams cp = core::CoreParams{})
    {
        core::O3Core core(cp, rn, mem, bp, stream);
        return core.run();
    }
};

const char *loopProgram = R"(
    movz x1, #2000
    movz x2, #0
loop:
    add x2, x2, x1
    muli x3, x1, #3
    add x4, x3, x2
    subi x1, x1, #1
    bne x1, xzr, loop
    halt
)";

// High register pressure: long independent chains of FP values.
const char *pressureProgram = R"(
    movz x1, #400
    fmovi f0, #1.0
    fmovi f1, #1.5
loop:
    fadd f2, f0, f1
    fmul f3, f2, f2
    fadd f4, f3, f1
    fmul f5, f4, f4
    fadd f6, f5, f1
    fmul f7, f6, f6
    fadd f8, f7, f1
    fmul f9, f8, f8
    fadd f10, f9, f0
    fmul f11, f10, f10
    fadd f12, f11, f0
    fsub f0, f12, f11
    subi x1, x1, #1
    bne x1, xzr, loop
    halt
)";

// Data-dependent branches: mispredictions guaranteed.
const char *branchyProgram = R"(
    movz x1, #3000
    movz x5, #2654435761
    movz x6, #0
loop:
    muli x5, x5, #6364136223846793005
    addi x5, x5, #1442695040888963407
    lsri x7, x5, #61
    andi x8, x7, #1
    beq x8, xzr, skip
    addi x6, x6, #1
skip:
    subi x1, x1, #1
    bne x1, xzr, loop
    halt
)";

const char *memoryProgram = R"(
    .equ N, 2048
    movz x1, =buf
    movz x2, #N
    movz x3, #0
init:
    str x3, [x1]
    addi x1, x1, #8
    subi x2, x2, #1
    bne x2, xzr, init
    movz x1, =buf
    movz x2, #N
    movz x4, #0
sum:
    ldr x5, [x1]
    add x4, x4, x5
    addi x1, x1, #8
    subi x2, x2, #1
    bne x2, xzr, sum
    halt
    .data
buf:
    .space 16384
)";

core::SimResult
runProgram(const char *src, rename::Renamer &rn,
           core::CoreParams cp = core::CoreParams{})
{
    static std::map<const char *, isa::Program> cache;
    auto it = cache.find(src);
    if (it == cache.end())
        it = cache.emplace(src, isa::assemble(src)).first;
    emu::Emulator stream(it->second, "prog");
    Rig rig;
    return rig.run(rn, stream, cp);
}

TEST(O3Core, CommitsEveryInstructionBaseline)
{
    isa::Program p = isa::assemble(loopProgram);
    emu::Emulator counter(p, "count");
    std::uint64_t n = counter.run();

    rename::BaselineRenamer rn(rename::BaselineParams{128, 128});
    auto res = runProgram(loopProgram, rn);
    EXPECT_EQ(res.committedInsts, n);
    EXPECT_GT(res.ipc(), 0.5);
    EXPECT_LT(res.ipc(), 3.01);
}

TEST(O3Core, CommitsEveryInstructionReuse)
{
    isa::Program p = isa::assemble(loopProgram);
    emu::Emulator counter(p, "count");
    std::uint64_t n = counter.run();

    rename::ReuseRenamer rn(rename::ReuseRenamerParams{});
    auto res = runProgram(loopProgram, rn);
    EXPECT_EQ(res.committedInsts, n);
    EXPECT_GT(res.ipc(), 0.5);
}

TEST(O3Core, ReuseHelpsUnderRegisterPressure)
{
    // Baseline with a tiny FP register file.
    rename::BaselineRenamer base(rename::BaselineParams{128, 40});
    auto res_base = runProgram(pressureProgram, base);

    // Proposed with an equal-ish (actually smaller) total register
    // count but shadow-cell banks.
    rename::ReuseRenamerParams rp;
    rp.intBanks = {116, 4, 4, 4};
    rp.fpBanks = {28, 4, 4, 4};
    rename::ReuseRenamer reuse(rp);
    auto res_reuse = runProgram(pressureProgram, reuse);

    EXPECT_EQ(res_base.committedInsts, res_reuse.committedInsts);
    // Sharing must not be slower under pressure; typically faster.
    EXPECT_GE(res_base.cycles, res_reuse.cycles * 95 / 100);
}

TEST(O3Core, LargeRegisterFileClosesTheGap)
{
    rename::BaselineRenamer base(rename::BaselineParams{128, 128});
    auto res_base = runProgram(pressureProgram, base);
    rename::ReuseRenamer reuse(rename::ReuseRenamerParams{});
    auto res_reuse = runProgram(pressureProgram, reuse);
    // With ample registers both should perform comparably (within 10%).
    double ratio = static_cast<double>(res_reuse.cycles) /
                   static_cast<double>(res_base.cycles);
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.1);
}

TEST(O3Core, BranchyCodeRunsAndMispredicts)
{
    rename::BaselineRenamer rn(rename::BaselineParams{128, 128});
    isa::Program p = isa::assemble(branchyProgram);
    emu::Emulator stream(p, "branchy");
    mem::MemSystem mem{mem::MemSystemParams{}};
    bpred::BranchPredictor bp{bpred::BPredParams{}};
    core::CoreParams cp;
    core::O3Core core(cp, rn, mem, bp, stream);
    auto res = core.run();

    emu::Emulator counter(p, "count");
    EXPECT_EQ(res.committedInsts, counter.run());
    // The PRNG-driven branch is unpredictable: expect mispredictions
    // and therefore a visibly lower IPC than the loop program.
    EXPECT_LT(res.ipc(), 2.5);
}

TEST(O3Core, MemoryProgramExercisesCaches)
{
    rename::BaselineRenamer rn(rename::BaselineParams{128, 128});
    auto res = runProgram(memoryProgram, rn);
    isa::Program p = isa::assemble(memoryProgram);
    emu::Emulator counter(p, "count");
    EXPECT_EQ(res.committedInsts, counter.run());
}

TEST(O3Core, WrongPathOffStillCorrect)
{
    core::CoreParams cp;
    cp.modelWrongPath = false;
    rename::ReuseRenamer rn(rename::ReuseRenamerParams{});
    auto res = runProgram(branchyProgram, rn, cp);
    isa::Program p = isa::assemble(branchyProgram);
    emu::Emulator counter(p, "count");
    EXPECT_EQ(res.committedInsts, counter.run());
}

TEST(O3Core, ExceptionInjectionRecoversPrecisely)
{
    core::CoreParams cp;
    cp.loadFaultProbability = 0.01;
    rename::ReuseRenamer rn(rename::ReuseRenamerParams{});
    auto res = runProgram(memoryProgram, rn, cp);
    isa::Program p = isa::assemble(memoryProgram);
    emu::Emulator counter(p, "count");
    // Every instruction still commits exactly once.
    EXPECT_EQ(res.committedInsts, counter.run());

    // And the run with faults takes longer than without.
    rename::ReuseRenamer rn2(rename::ReuseRenamerParams{});
    auto res_nofault = runProgram(memoryProgram, rn2);
    EXPECT_GT(res.cycles, res_nofault.cycles);
}

TEST(O3Core, TimerInterruptsFlushAndReplay)
{
    core::CoreParams cp;
    cp.interruptInterval = 5000;
    rename::ReuseRenamer rn(rename::ReuseRenamerParams{});
    auto res = runProgram(loopProgram, rn, cp);
    isa::Program p = isa::assemble(loopProgram);
    emu::Emulator counter(p, "count");
    EXPECT_EQ(res.committedInsts, counter.run());
}

TEST(O3Core, DeterministicAcrossRuns)
{
    for (auto which : {0, 1}) {
        std::uint64_t c1, c2;
        {
            rename::ReuseRenamer rn(rename::ReuseRenamerParams{});
            c1 = runProgram(which ? branchyProgram : pressureProgram, rn)
                     .cycles;
        }
        {
            rename::ReuseRenamer rn(rename::ReuseRenamerParams{});
            c2 = runProgram(which ? branchyProgram : pressureProgram, rn)
                     .cycles;
        }
        EXPECT_EQ(c1, c2);
    }
}

TEST(O3Core, MaxInstsCapStopsEarly)
{
    core::CoreParams cp;
    cp.maxInsts = 500;
    rename::BaselineRenamer rn(rename::BaselineParams{128, 128});
    auto res = runProgram(loopProgram, rn, cp);
    EXPECT_EQ(res.committedInsts, 500u);
}

TEST(O3Core, SyntheticStreamRuns)
{
    trace::SyntheticParams sp;
    sp.numInsts = 20000;
    trace::SyntheticStream stream(sp);
    rename::ReuseRenamer rn(rename::ReuseRenamerParams{});
    mem::MemSystem mem{mem::MemSystemParams{}};
    bpred::BranchPredictor bp{bpred::BPredParams{}};
    core::O3Core core(core::CoreParams{}, rn, mem, bp, stream);
    auto res = core.run();
    EXPECT_EQ(res.committedInsts, 20000u);
    EXPECT_GT(res.ipc(), 0.1);
}

TEST(O3Core, TinyRegisterFileStillMakesProgress)
{
    // The smallest Table III configuration.
    rename::ReuseRenamerParams rp;
    rp.intBanks = {33, 4, 4, 4};
    rp.fpBanks = {28, 4, 4, 4};
    rename::ReuseRenamer rn(rp);
    auto res = runProgram(pressureProgram, rn);
    isa::Program p = isa::assemble(pressureProgram);
    emu::Emulator counter(p, "count");
    EXPECT_EQ(res.committedInsts, counter.run());
}

TEST(O3Core, BaselineTinyRegisterFileStillMakesProgress)
{
    rename::BaselineRenamer rn(rename::BaselineParams{48, 48});
    auto res = runProgram(pressureProgram, rn);
    isa::Program p = isa::assemble(pressureProgram);
    emu::Emulator counter(p, "count");
    EXPECT_EQ(res.committedInsts, counter.run());
}

} // namespace
