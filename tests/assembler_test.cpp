// Unit tests for the two-pass assembler: labels, directives, operand
// forms, and symbol resolution.

#include <gtest/gtest.h>

#include "isa/assembler.hh"

namespace {

using namespace rrs;
using namespace rrs::isa;

TEST(Assembler, BasicAlu)
{
    Program p = assemble(R"(
        add x1, x2, x3
        addi x4, x1, #8
        movz x5, #0x10
        halt
    )");
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p.text[0].op, Opcode::Add);
    EXPECT_EQ(p.text[0].dest, intReg(1));
    EXPECT_EQ(p.text[1].imm, 8);
    EXPECT_EQ(p.text[2].imm, 16);
    EXPECT_EQ(p.text[3].op, Opcode::Halt);
}

TEST(Assembler, CommentsAndBlankLines)
{
    Program p = assemble(R"(
        ; full-line comment
        add x1, x2, x3   // trailing comment

        nop ; another
    )");
    EXPECT_EQ(p.size(), 2u);
}

TEST(Assembler, LabelsAndBranches)
{
    Program p = assemble(R"(
    loop:
        subi x1, x1, #1
        bne x1, xzr, loop
        halt
    )");
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p.symbols.at("loop"), textBase);
    EXPECT_EQ(p.text[1].target, textBase);
    EXPECT_EQ(p.text[1].srcs[1], intReg(zeroReg));
}

TEST(Assembler, LabelOnSameLineAsInstruction)
{
    Program p = assemble("start: nop\n b start\n");
    EXPECT_EQ(p.symbols.at("start"), textBase);
    EXPECT_EQ(p.text[1].target, textBase);
}

TEST(Assembler, MemoryOperands)
{
    Program p = assemble(R"(
        ldr x1, [x2, #16]
        ldr x3, [x4]
        str x1, [x2, #-8]
        fldr f0, [x5, #0]
        fstr f0, [x5, #8]
    )");
    EXPECT_EQ(p.text[0].imm, 16);
    EXPECT_EQ(p.text[1].imm, 0);
    EXPECT_EQ(p.text[2].imm, -8);
    EXPECT_EQ(p.text[3].dest, fpReg(0));
    EXPECT_EQ(p.text[4].srcs[0], fpReg(0));
    EXPECT_EQ(p.text[4].srcs[1], intReg(5));
}

TEST(Assembler, CallAndReturnImplicitLinkReg)
{
    Program p = assemble(R"(
        bl func
        halt
    func:
        ret
    )");
    EXPECT_EQ(p.text[0].dest, intReg(linkReg));
    EXPECT_EQ(p.text[0].target, textBase + 2 * instBytes);
    EXPECT_EQ(p.text[2].srcs[0], intReg(linkReg));
}

TEST(Assembler, DataDirectivesAndSymbols)
{
    Program p = assemble(R"(
        .data
    arr:
        .word 1, 2, 3
    vals:
        .double 1.5, -2.5
    buf:
        .space 64
    after:
        .word 9
        .text
        movz x1, =arr
        movz x2, =after
        halt
    )");
    EXPECT_EQ(p.symbols.at("arr"), dataBase);
    EXPECT_EQ(p.symbols.at("vals"), dataBase + 24);
    EXPECT_EQ(p.symbols.at("buf"), dataBase + 40);
    EXPECT_EQ(p.symbols.at("after"), dataBase + 104);
    EXPECT_EQ(p.text[0].imm, static_cast<std::int64_t>(dataBase));
    EXPECT_EQ(p.text[1].imm, static_cast<std::int64_t>(dataBase + 104));
    // Data bytes: first chunk is 1,2,3 little endian.
    ASSERT_GE(p.data.size(), 2u);
    EXPECT_EQ(p.data[0].bytes.size(), 24u);
    EXPECT_EQ(p.data[0].bytes[0], 1);
    EXPECT_EQ(p.data[0].bytes[8], 2);
}

TEST(Assembler, EquConstants)
{
    Program p = assemble(R"(
        .equ N, 100
        movz x1, N
        addi x2, x1, N
        halt
    )");
    EXPECT_EQ(p.text[0].imm, 100);
    EXPECT_EQ(p.text[1].imm, 100);
}

TEST(Assembler, FpImmediateAndRegisters)
{
    Program p = assemble(R"(
        fmovi f1, #2.5
        fmadd f0, f1, f2, f3
        halt
    )");
    EXPECT_DOUBLE_EQ(p.text[0].fimm, 2.5);
    EXPECT_EQ(p.text[1].srcs[2], fpReg(3));
}

TEST(Assembler, RegisterAliases)
{
    Program p = assemble(R"(
        addi sp, sp, #-16
        mov x1, lr
        halt
    )");
    EXPECT_EQ(p.text[0].dest, intReg(28));
    EXPECT_EQ(p.text[1].srcs[0], intReg(linkReg));
}

TEST(Assembler, StartSymbolSetsEntry)
{
    Program p = assemble(R"(
        nop
    _start:
        halt
    )");
    EXPECT_EQ(p.entry, textBase + instBytes);
}

TEST(Assembler, ProgramPcHelpers)
{
    Program p = assemble("nop\nnop\nhalt\n");
    EXPECT_TRUE(p.validPc(textBase));
    EXPECT_TRUE(p.validPc(textBase + 2 * instBytes));
    EXPECT_FALSE(p.validPc(textBase + 3 * instBytes));
    EXPECT_FALSE(p.validPc(textBase + 2));
    EXPECT_EQ(Program::indexOf(Program::pcOf(7)), 7u);
}

} // namespace
