// Unit tests for the statistics package and the text-table formatter.

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"
#include "stats/table.hh"

namespace {

using namespace rrs::stats;

TEST(Scalar, IncrementAndAssign)
{
    Group g("g");
    Scalar s(&g, "count", "a counter");
    ++s;
    s += 3.5;
    EXPECT_DOUBLE_EQ(s.value(), 4.5);
    s = 10;
    EXPECT_DOUBLE_EQ(s.value(), 10);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0);
}

TEST(Average, MeanMinMax)
{
    Group g("g");
    Average a(&g, "occ", "occupancy");
    a.sample(2);
    a.sample(4);
    a.sample(9);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_EQ(a.samples(), 3u);
}

TEST(Average, EmptyIsZero)
{
    Group g("g");
    Average a(&g, "x", "");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(DistributionStat, FractionsAndMean)
{
    Group g("g");
    Distribution d(&g, "uses", "consumer counts");
    d.sample(1, 50);
    d.sample(2, 30);
    d.sample(5, 20);
    EXPECT_EQ(d.samples(), 100u);
    EXPECT_DOUBLE_EQ(d.fraction(1), 0.5);
    EXPECT_DOUBLE_EQ(d.fraction(2), 0.3);
    EXPECT_DOUBLE_EQ(d.fraction(3), 0.0);
    EXPECT_DOUBLE_EQ(d.fractionAtLeast(2), 0.5);
    EXPECT_DOUBLE_EQ(d.mean(), (1 * 50 + 2 * 30 + 5 * 20) / 100.0);
}

TEST(DistributionPercentile, EmptyIsZero)
{
    Group g("g");
    Distribution d(&g, "lat", "");
    EXPECT_DOUBLE_EQ(d.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 0.0);
}

TEST(DistributionPercentile, SingleSampleIsItself)
{
    Group g("g");
    Distribution d(&g, "lat", "");
    d.sample(42);
    EXPECT_DOUBLE_EQ(d.percentile(0), 42.0);
    EXPECT_DOUBLE_EQ(d.percentile(37), 42.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 42.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 42.0);
}

TEST(DistributionPercentile, OutOfRangePClampsToExtremes)
{
    Group g("g");
    Distribution d(&g, "lat", "");
    d.sample(10);
    d.sample(20);
    d.sample(30);
    EXPECT_DOUBLE_EQ(d.percentile(-5), 10.0);
    EXPECT_DOUBLE_EQ(d.percentile(250), 30.0);
    // And the empty/one-sample pins hold for out-of-range p too.
    Distribution e(&g, "lat2", "");
    EXPECT_DOUBLE_EQ(e.percentile(-5), 0.0);
    EXPECT_DOUBLE_EQ(e.percentile(250), 0.0);
    e.sample(7);
    EXPECT_DOUBLE_EQ(e.percentile(-5), 7.0);
    EXPECT_DOUBLE_EQ(e.percentile(250), 7.0);
}

TEST(DistributionPercentile, InterpolatesBetweenSamples)
{
    Group g("g");
    Distribution d(&g, "lat", "");
    // Sorted samples: 10, 20 — rank p/100 * 1.
    d.sample(10);
    d.sample(20);
    EXPECT_DOUBLE_EQ(d.percentile(0), 10.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 15.0);
    EXPECT_DOUBLE_EQ(d.percentile(75), 17.5);
    EXPECT_DOUBLE_EQ(d.percentile(100), 20.0);
}

TEST(DistributionPercentile, BucketEdges)
{
    Group g("g");
    Distribution d(&g, "lat", "");
    // Sorted samples: 1, 1, 1, 5 (positions 0..3).
    d.sample(1, 3);
    d.sample(5, 1);
    // Rank 50% = 1.5 — inside the run of 1s: no interpolation.
    EXPECT_DOUBLE_EQ(d.percentile(50), 1.0);
    // Rank 2/3*3 = 2.0 — exactly the last 1.
    EXPECT_DOUBLE_EQ(d.percentile(200.0 / 3.0), 1.0);
    // Rank 75% = 2.25 — straddles the 1 -> 5 bucket edge.
    EXPECT_DOUBLE_EQ(d.percentile(75), 1.0 + 0.25 * 4.0);
    // Rank 100% = the lone 5.
    EXPECT_DOUBLE_EQ(d.percentile(100), 5.0);
}

TEST(DistributionPercentile, ClampsOutOfRangeP)
{
    Group g("g");
    Distribution d(&g, "lat", "");
    d.sample(3);
    d.sample(9);
    EXPECT_DOUBLE_EQ(d.percentile(-5), 3.0);
    EXPECT_DOUBLE_EQ(d.percentile(150), 9.0);
}

TEST(DistributionPercentile, MedianOfOddCountIsExactSample)
{
    Group g("g");
    Distribution d(&g, "lat", "");
    d.sample(2);
    d.sample(4);
    d.sample(8);
    EXPECT_DOUBLE_EQ(d.percentile(50), 4.0);
    EXPECT_DOUBLE_EQ(d.percentile(25), 3.0);
    EXPECT_DOUBLE_EQ(d.percentile(75), 6.0);
}

TEST(ScalarMerge, AddsValues)
{
    Group g("g");
    Scalar a(&g, "a", ""), b(&g, "b", "");
    a = 10;
    b = 2.5;
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.value(), 12.5);
    EXPECT_DOUBLE_EQ(b.value(), 2.5);
}

TEST(AverageMerge, CombinesSumsAndExtrema)
{
    Group g("g");
    Average a(&g, "a", ""), b(&g, "b", "");
    a.sample(2);
    a.sample(4);
    b.sample(-1);
    b.sample(9);
    a.merge(b);
    EXPECT_EQ(a.samples(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.5);
    EXPECT_DOUBLE_EQ(a.min(), -1.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(AverageMerge, EmptySidesAreNeutral)
{
    Group g("g");
    Average a(&g, "a", ""), empty(&g, "e", "");
    a.sample(5);
    a.merge(empty);
    EXPECT_EQ(a.samples(), 1u);
    EXPECT_DOUBLE_EQ(a.min(), 5.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);

    Average into(&g, "i", "");
    into.merge(a);
    EXPECT_EQ(into.samples(), 1u);
    EXPECT_DOUBLE_EQ(into.mean(), 5.0);
    EXPECT_DOUBLE_EQ(into.min(), 5.0);
    EXPECT_DOUBLE_EQ(into.max(), 5.0);
}

TEST(DistributionMerge, AddsCountsByKey)
{
    Group g("g");
    Distribution a(&g, "a", ""), b(&g, "b", "");
    a.sample(1, 3);
    a.sample(2, 1);
    b.sample(2, 4);
    b.sample(7, 2);
    a.merge(b);
    EXPECT_EQ(a.samples(), 10u);
    EXPECT_EQ(a.count(1), 3u);
    EXPECT_EQ(a.count(2), 5u);
    EXPECT_EQ(a.count(7), 2u);
}

TEST(GroupDump, NestedPrefixes)
{
    Group root("core");
    Group child("rename", &root);
    Scalar s1(&root, "cycles", "total cycles");
    Scalar s2(&child, "stalls", "rename stalls");
    s1 = 100;
    s2 = 7;
    std::ostringstream oss;
    root.dump(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("core.cycles 100"), std::string::npos);
    EXPECT_NE(out.find("core.rename.stalls 7"), std::string::npos);
}

TEST(GroupDump, ResetRecurses)
{
    Group root("r");
    Group child("c", &root);
    Scalar s(&child, "n", "");
    s = 5;
    root.resetStats();
    EXPECT_DOUBLE_EQ(s.value(), 0);
}

TEST(TextTable, AlignedOutput)
{
    TextTable t({"bench", "speedup"});
    t.row().cell("mcf").cell(1.0471, 3);
    t.row().cell("lbm").cell(1.122, 3);
    std::ostringstream oss;
    t.print(oss, "Figure 10");
    std::string out = oss.str();
    EXPECT_NE(out.find("Figure 10"), std::string::npos);
    EXPECT_NE(out.find("bench"), std::string::npos);
    EXPECT_NE(out.find("1.047"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TextTable, CsvEscaping)
{
    TextTable t({"name", "v"});
    t.row().cell("with,comma").cell(std::uint64_t{3});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_NE(oss.str().find("\"with,comma\",3"), std::string::npos);
}

} // namespace
