// Cross-scheme conformance kit: every rename scheme in the registry —
// including ones registered by future PRs — inherits this suite by
// construction, because the parameterization enumerates the registry
// itself.  The contract checked per scheme:
//
//  - registry round trip: the scheme resolves by name, advertises its
//    parameter keys truthfully, and rejects unknown keys;
//  - equal-area configurations build working renamers at every paper
//    sweep point, and the area descriptor prices to a positive area
//    no larger than the baseline budget it was solved against;
//  - freelist conservation and exact squash-undo under a randomized
//    rename/commit/squash schedule, driven purely through the Renamer
//    protocol (mapping() snapshots — no concrete types);
//  - the RRS_AUDIT invariant auditor stays clean at every-commit
//    granularity through the harness (auditable schemes);
//  - harness counters are self-consistent and sweep results are
//    bit-identical across thread counts and across repeat runs.

#include <gtest/gtest.h>

#include <deque>

#include "area/area.hh"
#include "common/random.hh"
#include "harness/sweepmatrix.hh"
#include "rename/scheme.hh"

namespace {

using namespace rrs;
using namespace rrs::rename;

/** Random well-formed instruction generator (rename-visible fields). */
class InstGen
{
  public:
    explicit InstGen(std::uint64_t seed) : rng(seed) {}

    trace::DynInst
    next()
    {
        trace::DynInst di;
        const double r = rng.uniform();
        auto randInt = [&] {
            return isa::intReg(static_cast<LogRegIndex>(rng.below(12)));
        };
        auto randFp = [&] {
            return isa::fpReg(static_cast<LogRegIndex>(rng.below(12)));
        };
        if (r < 0.15) {
            di.si.op = isa::Opcode::Str;   // no destination
            di.si.srcs[0] = randInt();
            di.si.srcs[1] = randInt();
        } else if (r < 0.3) {
            di.si.op = isa::Opcode::Fmadd;
            di.si.dest = randFp();
            di.si.srcs[0] = randFp();
            di.si.srcs[1] = randFp();
            di.si.srcs[2] = randFp();
        } else if (r < 0.45) {
            di.si.op = isa::Opcode::Movz;
            di.si.dest = randInt();
        } else if (r < 0.6) {
            // Redefining single-use pattern (chain food).
            di.si.op = isa::Opcode::Addi;
            auto reg = randInt();
            di.si.dest = reg;
            di.si.srcs[0] = reg;
        } else {
            di.si.op = isa::Opcode::Add;
            di.si.dest = randInt();
            di.si.srcs[0] = randInt();
            di.si.srcs[1] = randInt();
        }
        di.pc = 0x1000 + 4 * rng.below(96);
        return di;
    }

  private:
    Random rng;
};

/** Full speculative-map snapshot via the scheme-generic mapping(). */
std::vector<PhysRegTag>
snapshotOf(const Renamer &rn)
{
    std::vector<PhysRegTag> s;
    for (LogRegIndex r = 0; r < isa::numLogRegs; ++r) {
        s.push_back(rn.mapping(RegClass::Int, r));
        s.push_back(rn.mapping(RegClass::Float, r));
    }
    return s;
}

/** The scheme's renamer at the tuned equal-area point for `regs`. */
std::unique_ptr<Renamer>
makeAt(const std::string &name, std::uint32_t regs)
{
    const RenameScheme &scheme = renameScheme(name);
    SchemeParams params;
    scheme.configureEqualArea(params, regs);
    return scheme.makeRenamer(params);
}

class SchemeConformance : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SchemeConformance, RegistryRoundTrip)
{
    const RenameScheme *scheme = findRenameScheme(GetParam());
    ASSERT_NE(scheme, nullptr);
    EXPECT_EQ(scheme->name(), GetParam());

    // Every advertised key must be settable; an invented one must be
    // a typed rejection (the matrix parser's diagnostic path).
    SchemeParams params;
    for (const auto &key : scheme->paramKeys())
        EXPECT_TRUE(scheme->setParam(params, key, 1.0)) << key;
    EXPECT_FALSE(scheme->setParam(params, "no_such_parameter", 1.0));
}

TEST_P(SchemeConformance, EqualAreaConfigsBuildAndPrice)
{
    const RenameScheme &scheme = renameScheme(GetParam());
    const area::AreaModel model;
    for (std::uint32_t regs : {48u, 56u, 64u, 72u, 80u, 96u, 112u}) {
        SchemeParams params;
        scheme.configureEqualArea(params, regs);
        auto rn = scheme.makeRenamer(params);
        ASSERT_NE(rn, nullptr);
        EXPECT_GT(rn->totalRegs(RegClass::Int), 0u);
        EXPECT_GT(rn->totalRegs(RegClass::Float), 0u);
        EXPECT_GE(rn->maxVersions(), 1u);

        const SchemeAreaDescriptor d = scheme.areaDescriptor(params);
        const double a = model.schemeArea(
            d.intBanks, d.fpBanks, 64, 128, d.prtCounterBits, 40,
            d.iqExtraTagBits, d.predictorEntries, d.predictorBits);
        EXPECT_GT(a, 0.0);
        // The equal-area guarantee: the *register files* fit within
        // the baseline files they were solved against (64b int + 128b
        // fp); the PRT/IQ/predictor extras ride on top and must stay
        // the paper's "well under 1%" of the files.
        const double files = model.schemeArea(d.intBanks, d.fpBanks,
                                              64, 128, 0, 40, 0, 0, 0);
        const double budget = model.regFileArea(regs, 64) +
                              model.regFileArea(regs, 128);
        EXPECT_LE(files, budget + 1e-9)
            << GetParam() << " register files overrun the budget at "
            << regs;
        EXPECT_LE(a - files, budget * 0.02)
            << GetParam() << " extra structures exceed 2% at " << regs;
    }
}

TEST_P(SchemeConformance, FreelistConservationAndExactSquashUndo)
{
    auto rn = makeAt(GetParam(), 64);
    InstGen gen(2024);
    Random sched(2024 ^ 0x5eed);
    std::deque<RenameResult> rob;
    std::deque<std::vector<PhysRegTag>> snaps;
    std::deque<HistoryToken> tokens;

    const std::uint32_t totalInt = rn->totalRegs(RegClass::Int);
    const std::uint32_t totalFp = rn->totalRegs(RegClass::Float);

    for (int step = 0; step < 4000; ++step) {
        double action = sched.uniform();
        if (action < 0.55 && rob.size() < 48) {
            auto snap = snapshotOf(*rn);
            auto token = rn->historyPosition();
            auto res = rn->rename(gen.next());
            if (res.success) {
                rob.push_back(res);
                snaps.push_back(std::move(snap));
                tokens.push_back(token);
            } else {
                // A failed rename must have had no side effects.
                ASSERT_EQ(snapshotOf(*rn), snap) << "stall side effects";
                if (!rob.empty()) {
                    rn->commit(rob.front());
                    rob.pop_front();
                    snaps.pop_front();
                    tokens.pop_front();
                }
            }
        } else if (action < 0.8) {
            for (int k = 0; k < 3 && !rob.empty(); ++k) {
                rn->commit(rob.front());
                rob.pop_front();
                snaps.pop_front();
                tokens.pop_front();
            }
        } else if (!rob.empty()) {
            // Squash a random suffix: the speculative map must return
            // to its snapshot exactly.
            std::size_t keep = sched.below(rob.size());
            auto expect = snaps[keep];
            rn->squashTo(tokens[keep]);
            ASSERT_EQ(snapshotOf(*rn), expect)
                << "squash did not restore state at step " << step;
            rob.resize(keep);
            snaps.resize(keep);
            tokens.resize(keep);
        }

        // Conservation: schemes may never mint registers.
        ASSERT_LE(rn->freeRegs(RegClass::Int), totalInt);
        ASSERT_LE(rn->freeRegs(RegClass::Float), totalFp);
    }

    // Drain, then a squash to the current (empty) history position
    // must be a no-op; conservation still holds.
    while (!rob.empty()) {
        rn->commit(rob.front());
        rob.pop_front();
    }
    auto settled = snapshotOf(*rn);
    rn->squashTo(rn->historyPosition());
    EXPECT_EQ(snapshotOf(*rn), settled);
    EXPECT_LE(rn->freeRegs(RegClass::Int), totalInt);
    EXPECT_LE(rn->freeRegs(RegClass::Float), totalFp);
    for (LogRegIndex r = 0; r < isa::numLogRegs; ++r) {
        EXPECT_TRUE(rn->mapping(RegClass::Int, r).valid());
        EXPECT_TRUE(rn->mapping(RegClass::Float, r).valid());
    }
}

TEST_P(SchemeConformance, AuditCleanAtEveryCommit)
{
    const RenameScheme &scheme = renameScheme(GetParam());
    if (!scheme.auditable())
        GTEST_SKIP() << GetParam() << " opts out of invariant auditing";
    const auto &w = workloads::workload("int_hash");
    harness::RunConfig cfg = harness::schemeConfig(GetParam(), 56);
    cfg.maxInsts = 15'000;
    cfg.obs.auditInterval = 1;
    auto out = harness::runOn(w, cfg);
    EXPECT_GT(out.auditsRun, 0.0);
    EXPECT_EQ(out.auditViolations, 0.0);
    EXPECT_GT(out.sim.committedInsts, 0u);
}

TEST_P(SchemeConformance, CountersAreSelfConsistent)
{
    const auto &w = workloads::workload("fp_fir");
    harness::RunConfig cfg = harness::schemeConfig(GetParam(), 64);
    cfg.maxInsts = 15'000;
    auto out = harness::runOn(w, cfg);
    EXPECT_GT(out.allocations, 0.0);
    EXPECT_GE(out.reuses, 0.0);
    EXPECT_GE(out.repairs, 0.0);
    EXPECT_GT(out.historyPeak, 0.0);
    EXPECT_GE(out.fig12.total(), 0.0);
}

/** The scheme's two-workload, two-size reference sweep. */
std::vector<harness::SweepItem>
referenceSweep(const std::string &scheme)
{
    harness::SweepMatrix m;
    m.schemes.push_back(harness::SchemeSpec{scheme, scheme, {}});
    m.rfSizes = {56, 96};
    m.cap = 20'000;
    m.sampleSharing = true;
    // Static: SweepItem keeps pointers into this list.
    static const std::vector<workloads::Workload> ws = {
        workloads::workload("int_crc"), workloads::workload("fp_fir")};
    return harness::expandSweepMatrix(m, ws, 0);
}

void
expectOutcomeEq(const harness::Outcome &a, const harness::Outcome &b,
                std::size_t idx)
{
    SCOPED_TRACE("sweep entry " + std::to_string(idx));
    EXPECT_EQ(a.sim.cycles, b.sim.cycles);
    EXPECT_EQ(a.sim.committedInsts, b.sim.committedInsts);
    EXPECT_EQ(a.allocations, b.allocations);
    EXPECT_EQ(a.reuses, b.reuses);
    EXPECT_EQ(a.repairs, b.repairs);
    EXPECT_EQ(a.renameStalls, b.renameStalls);
    EXPECT_EQ(a.fig12.total(), b.fig12.total());
    EXPECT_EQ(a.sharedAtLeast1, b.sharedAtLeast1);
    EXPECT_EQ(a.sharedAtLeast2, b.sharedAtLeast2);
    EXPECT_EQ(a.sharedAtLeast3, b.sharedAtLeast3);
}

TEST_P(SchemeConformance, BitIdenticalAcrossThreadCounts)
{
    auto items = referenceSweep(GetParam());
    harness::SweepRunner one(1);
    auto ref = one.outcomes(items);
    ASSERT_EQ(ref.size(), items.size());
    for (unsigned threads : {2u, 4u}) {
        harness::SweepRunner runner(threads);
        auto got = runner.outcomes(items);
        ASSERT_EQ(got.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
            SCOPED_TRACE("threads=" + std::to_string(threads));
            expectOutcomeEq(ref[i], got[i], i);
        }
    }
}

TEST_P(SchemeConformance, RepeatRunsAreIdentical)
{
    auto items = referenceSweep(GetParam());
    harness::SweepRunner runner(4);
    auto first = runner.outcomes(items);
    auto second = runner.outcomes(items);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectOutcomeEq(first[i], second[i], i);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, SchemeConformance,
    ::testing::ValuesIn(registeredRenameSchemes()),
    [](const auto &info) { return info.param; });

} // namespace
