// Tests for the O3PipeView pipeline event tracer: a golden trace of a
// tiny straight-line program, structural invariants of the format on
// larger runs, and the squash marking on wrong-path work.

#include <gtest/gtest.h>

#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "core/o3core.hh"
#include "emu/emulator.hh"
#include "isa/assembler.hh"
#include "obs/pipetrace.hh"
#include "rename/baseline.hh"

namespace {

using namespace rrs;

// Straight-line, no branches, no memory: the schedule is fully
// deterministic, so the emitted trace is byte-stable.
const char *tinyProgram = R"(
    movz x1, #5
    add x2, x1, x1
    muli x3, x2, #7
    sub x4, x3, x1
    halt
)";

const char *branchyProgram = R"(
    movz x1, #300
    movz x5, #2654435761
    movz x6, #0
loop:
    muli x5, x5, #6364136223846793005
    addi x5, x5, #1442695040888963407
    lsri x7, x5, #61
    andi x8, x7, #1
    beq x8, xzr, skip
    addi x6, x6, #1
skip:
    subi x1, x1, #1
    bne x1, xzr, loop
    halt
)";

struct TracedRun
{
    std::string trace;
    core::SimResult result;
};

TracedRun
runTraced(const char *src)
{
    isa::Program p = isa::assemble(src);
    emu::Emulator stream(p, "prog");
    mem::MemSystem mem{mem::MemSystemParams{}};
    bpred::BranchPredictor bp{bpred::BPredParams{}};
    rename::BaselineRenamer rn(rename::BaselineParams{128, 128});
    std::ostringstream os;
    obs::PipeTracer tracer(os);
    core::O3Core core(core::CoreParams{}, rn, mem, bp, stream);
    core.setTracer(&tracer);
    TracedRun out;
    out.result = core.run();
    out.trace = os.str();
    return out;
}

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        out.push_back(line);
    return out;
}

// The full expected trace of tinyProgram under the default Table I
// core: a byte-for-byte golden.  The first fetch lands at cycle 433
// (cold L1I/L2 miss to DRAM); decode shares fetch's tick because the
// core models the front end as one pipe; the muli's two-cycle FU and
// the dependent sub's late issue are visible in the issue/complete
// columns; halt is a Nop-class inst, issued and completed at rename.
const char *goldenTinyTrace =
    R"(O3PipeView:fetch:217000:0x00010000:0:0:movz x1, #5
O3PipeView:decode:217000
O3PipeView:rename:217500
O3PipeView:dispatch:217500
O3PipeView:issue:218000
O3PipeView:complete:218500
O3PipeView:retire:219000:store:0
O3PipeView:fetch:217000:0x00010004:0:1:add x2, x1, x1
O3PipeView:decode:217000
O3PipeView:rename:217500
O3PipeView:dispatch:217500
O3PipeView:issue:218500
O3PipeView:complete:219000
O3PipeView:retire:219500:store:0
O3PipeView:fetch:217000:0x00010008:0:2:muli x3, x2, #7
O3PipeView:decode:217000
O3PipeView:rename:217500
O3PipeView:dispatch:217500
O3PipeView:issue:219000
O3PipeView:complete:221000
O3PipeView:retire:221500:store:0
O3PipeView:fetch:217500:0x0001000c:0:3:sub x4, x3, x1
O3PipeView:decode:217500
O3PipeView:rename:218000
O3PipeView:dispatch:218000
O3PipeView:issue:221000
O3PipeView:complete:221500
O3PipeView:retire:222000:store:0
O3PipeView:fetch:217500:0x00010010:0:4:halt
O3PipeView:decode:217500
O3PipeView:rename:218000
O3PipeView:dispatch:218000
O3PipeView:issue:218000
O3PipeView:complete:218000
O3PipeView:retire:222000:store:0
)";

TEST(PipeTrace, GoldenTinyProgram)
{
    TracedRun run = runTraced(tinyProgram);
    EXPECT_EQ(run.trace, goldenTinyTrace);
}

TEST(PipeTrace, StructureAndTickMonotonicity)
{
    TracedRun run = runTraced(branchyProgram);
    const auto ls = lines(run.trace);
    ASSERT_FALSE(ls.empty());

    const std::regex fetchRe(
        "O3PipeView:fetch:[0-9]+:0x[0-9a-f]+:0:[0-9]+:.*");
    const std::regex stageRe(
        "O3PipeView:(decode|rename|dispatch|issue|complete):[0-9]+");
    const std::regex retireRe("O3PipeView:retire:[0-9]+:store:[0-9]+");

    std::uint64_t fetches = 0, retires = 0, squashes = 0;
    std::vector<std::uint64_t> ticks;  // current record's stage ticks
    for (const auto &l : ls) {
        if (l.rfind("O3PipeView:fetch:", 0) == 0) {
            EXPECT_TRUE(std::regex_match(l, fetchRe)) << l;
            ++fetches;
            ticks.clear();
            ticks.push_back(std::stoull(l.substr(17)));
        } else if (l.rfind("O3PipeView:retire:", 0) == 0) {
            EXPECT_TRUE(std::regex_match(l, retireRe)) << l;
            std::uint64_t t = std::stoull(l.substr(18));
            if (t == 0)
                ++squashes;
            else
                ++retires;
            ticks.push_back(t);
        } else {
            EXPECT_TRUE(std::regex_match(l, stageRe)) << l;
            ticks.push_back(
                std::stoull(l.substr(l.find_last_of(':') + 1)));
        }
        // Within one record, ticks of reached stages never decrease,
        // and every tick is a whole number of 500-tick cycles.
        std::uint64_t prev = 0;
        for (std::uint64_t t : ticks) {
            EXPECT_EQ(t % obs::PipeTracer::defaultTicksPerCycle, 0u);
            if (t != 0) {
                EXPECT_GE(t, prev);
                prev = t;
            }
        }
    }

    // Every record is exactly 7 lines.
    EXPECT_EQ(ls.size(), fetches * 7);
    // Every retired instruction the core counted is in the trace, and
    // the wrong-path work shows up as squashed records.
    EXPECT_EQ(retires, run.result.committedInsts);
    EXPECT_GT(squashes, 0u);
    EXPECT_EQ(fetches, retires + squashes);
}

TEST(PipeTrace, RetiredStagesAllReached)
{
    // A retired (non-squashed) instruction must have reached every
    // stage: no zero ticks anywhere in its record.
    TracedRun run = runTraced(tinyProgram);
    const auto ls = lines(run.trace);
    for (std::size_t i = 0; i + 6 < ls.size(); i += 7) {
        std::uint64_t retireTick = std::stoull(ls[i + 6].substr(18));
        if (retireTick == 0)
            continue;
        for (std::size_t j = 0; j < 6; ++j) {
            std::uint64_t t = std::stoull(
                ls[i + j].substr(ls[i + j].find(':', 11) + 1));
            EXPECT_GT(t, 0u) << ls[i + j];
        }
    }
}

} // namespace
