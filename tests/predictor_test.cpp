// Unit tests for the register type predictor's training rules
// (paper Section IV-D): decrement on unused shadow copies, reset on
// multi-use detection, increment on shadow exhaustion, and the
// bootstrap rule for genuinely missed single-use values.

#include <gtest/gtest.h>

#include "rename/predictor.hh"

namespace {

using namespace rrs;
using rrs::rename::RegisterTypePredictor;
using rrs::rename::TypePredictorParams;

TEST(TypePredictor, StartsPredictingNormalBank)
{
    RegisterTypePredictor p(TypePredictorParams{512});
    for (Addr pc = 0x1000; pc < 0x1100; pc += 4)
        EXPECT_EQ(p.predict(pc), 0);
}

TEST(TypePredictor, IndexIsStableAndBounded)
{
    RegisterTypePredictor p(TypePredictorParams{512});
    for (Addr pc = 0x4000; pc < 0x4400; pc += 4) {
        auto idx = p.indexFor(pc);
        EXPECT_LT(idx, p.entries());
        EXPECT_EQ(idx, p.indexFor(pc));
    }
}

TEST(TypePredictor, ShadowExhaustionEscalates)
{
    RegisterTypePredictor p(TypePredictorParams{512});
    const Addr pc = 0x2000;
    auto idx = p.indexFor(pc);
    EXPECT_EQ(p.predict(pc), 0);
    p.trainOnShadowExhausted(idx);
    EXPECT_EQ(p.predict(pc), 1);
    p.trainOnShadowExhausted(idx);
    p.trainOnShadowExhausted(idx);
    EXPECT_EQ(p.predict(pc), 3);
    // Saturates at 3 (the deepest bank).
    p.trainOnShadowExhausted(idx);
    EXPECT_EQ(p.predict(pc), 3);
}

TEST(TypePredictor, UnusedShadowCopiesDecrement)
{
    RegisterTypePredictor p(TypePredictorParams{512});
    const Addr pc = 0x2000;
    auto idx = p.indexFor(pc);
    for (int i = 0; i < 3; ++i)
        p.trainOnShadowExhausted(idx);
    ASSERT_EQ(p.value(idx), 3);
    // Released from a 3-shadow bank having used only one reuse.
    p.trainOnRelease(idx, 3, 1, false);
    EXPECT_EQ(p.value(idx), 2);
    // Using every provisioned copy does not decrement.
    p.trainOnRelease(idx, 2, 2, false);
    EXPECT_EQ(p.value(idx), 2);
}

TEST(TypePredictor, MultiUseDetectionResets)
{
    RegisterTypePredictor p(TypePredictorParams{512});
    const Addr pc = 0x2000;
    auto idx = p.indexFor(pc);
    p.trainOnShadowExhausted(idx);
    p.trainOnShadowExhausted(idx);
    ASSERT_EQ(p.value(idx), 2);
    // A register from a shadow bank turned out to have >1 consumer.
    p.trainOnRelease(idx, 2, 1, true);
    EXPECT_EQ(p.value(idx), 0);
}

TEST(TypePredictor, MultiUseOnNormalBankDoesNotReset)
{
    RegisterTypePredictor p(TypePredictorParams{512});
    auto idx = p.indexFor(0x2000);
    // allocatedShadow == 0: nothing was predicted, nothing to reset.
    p.trainOnRelease(idx, 0, 0, true);
    EXPECT_EQ(p.value(idx), 0);
}

TEST(TypePredictor, MissedSingleUseBootstrapsOnce)
{
    RegisterTypePredictor p(TypePredictorParams{512});
    auto idx = p.indexFor(0x2000);
    // A bank-0 register died with exactly one (reusable) consumer.
    p.trainOnRelease(idx, 0, 0, false, true);
    EXPECT_EQ(p.value(idx), 1);
    // The bootstrap only lifts dormant entries; escalation beyond
    // bank 1 is the shadow-exhaustion rule's job.
    p.trainOnRelease(idx, 0, 0, false, true);
    EXPECT_EQ(p.value(idx), 1);
}

TEST(TypePredictor, SingleEntryTableAliasesEverything)
{
    RegisterTypePredictor p(TypePredictorParams{1});
    EXPECT_EQ(p.indexFor(0x1000), 0u);
    EXPECT_EQ(p.indexFor(0x9999000), 0u);
    p.trainOnShadowExhausted(0);
    EXPECT_EQ(p.predict(0xabc0), 1);
}

TEST(TypePredictor, DifferentPcsTrainIndependently)
{
    RegisterTypePredictor p(TypePredictorParams{4096});
    // Find two PCs with distinct indices (overwhelmingly likely).
    Addr a = 0x1000, b = 0x1004;
    while (p.indexFor(a) == p.indexFor(b))
        b += 4;
    p.trainOnShadowExhausted(p.indexFor(a));
    EXPECT_EQ(p.predict(a), 1);
    EXPECT_EQ(p.predict(b), 0);
}

} // namespace
