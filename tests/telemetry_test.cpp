// Tests for the telemetry spine (obs/telemetry.hh): the trace-event
// renderer's exact output, JSON validity via the jsonlite parser,
// escaping of hostile names, and the sweep-level determinism contract —
// the exported trace file must be byte-identical for every RRS_THREADS
// value, verified by running the same sweep at 1, 2 and 4 lanes.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/sweep.hh"
#include "obs/jsonlite.hh"
#include "obs/telemetry.hh"

namespace {

using namespace rrs;
using obs::RunTelemetry;
using obs::TelemetrySweepInfo;

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is.is_open()) << path;
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

/** A small two-run telemetry payload built by hand. */
std::vector<RunTelemetry>
sampleRuns()
{
    std::vector<RunTelemetry> runs(2);
    runs[0].setTitle("int_crc x baseline");
    auto &s = runs[0].span("run", 0, 1000);
    obs::argStr(s, "workload", "int_crc");
    obs::argInt(s, "insts", 500);
    obs::argNum(s, "ipc", 0.5);
    runs[0].counter("occupancy", 128, {{"freeInt", 12}, {"rob", 30}});
    runs[0].counter("occupancy", 256, {{"freeInt", 10}, {"rob", 32}});
    runs[1].setTitle("fp_fir x reuse");
    runs[1].span("run", 0, 800);
    return runs;
}

TelemetrySweepInfo
sampleInfo()
{
    TelemetrySweepInfo info;
    info.label = "unit";
    info.runs = 2;
    info.capturedInsts = 1234;
    info.replayedInsts = 5678;
    info.packedRecords = 777;
    return info;
}

std::vector<const RunTelemetry *>
ptrs(const std::vector<RunTelemetry> &runs)
{
    std::vector<const RunTelemetry *> out;
    for (const auto &r : runs)
        out.push_back(&r);
    return out;
}

TEST(Telemetry, RenderIsDeterministic)
{
    auto runs = sampleRuns();
    const std::string a = obs::renderSweepTrace(sampleInfo(), ptrs(runs));
    const std::string b = obs::renderSweepTrace(sampleInfo(), ptrs(runs));
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
}

TEST(Telemetry, RenderedTraceIsValidChromeJson)
{
    auto runs = sampleRuns();
    const std::string body =
        obs::renderSweepTrace(sampleInfo(), ptrs(runs));

    obs::json::Value doc;
    std::string error;
    ASSERT_TRUE(obs::json::parse(body, doc, &error)) << error;
    const obs::json::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    // process_name metadata + 2 thread names + 2 spans + 2 counters on
    // run 0, 1 span on run 1, sweep thread name + 3 sweep spans
    // (capture, pack, stats-merge).
    EXPECT_EQ(events->arr.size(), 11u);

    // Every event is on pid 1 (constant by design: worker identity is
    // scheduling noise and must not reach the trace).
    for (const auto &ev : events->arr) {
        const auto *pid = ev.find("pid");
        ASSERT_NE(pid, nullptr);
        EXPECT_EQ(pid->num, 1.0);
    }

    // The sweep track rides at tid == run count: capture, then the
    // pack span (record-denominated) starting where capture ends, then
    // stats-merge after both.
    bool sawCapture = false, sawPack = false, sawMerge = false;
    for (const auto &ev : events->arr) {
        const auto *name = ev.find("name");
        if (name && name->str == "capture") {
            sawCapture = true;
            EXPECT_EQ(ev.at("tid").num, 2.0);
            EXPECT_EQ(ev.at("dur").num, 1234.0);
        }
        if (name && name->str == "pack") {
            sawPack = true;
            EXPECT_EQ(ev.at("tid").num, 2.0);
            EXPECT_EQ(ev.at("ts").num, 1234.0);
            EXPECT_EQ(ev.at("dur").num, 777.0);
        }
        if (name && name->str == "stats-merge") {
            sawMerge = true;
            EXPECT_EQ(ev.at("ts").num, 1234.0 + 777.0);
        }
    }
    EXPECT_TRUE(sawCapture);
    EXPECT_TRUE(sawPack);
    EXPECT_TRUE(sawMerge);
}

TEST(Telemetry, HostileNamesAreEscaped)
{
    std::vector<RunTelemetry> runs(1);
    runs[0].setTitle("quote\" backslash\\ newline\n end");
    auto &s = runs[0].span("span \"x\"", 0, 1);
    obs::argStr(s, "key\n", "tab\there");
    TelemetrySweepInfo info;
    info.label = "evil \"label\"";
    info.runs = 1;

    const std::string body = obs::renderSweepTrace(info, ptrs(runs));
    obs::json::Value doc;
    std::string error;
    ASSERT_TRUE(obs::json::parse(body, doc, &error)) << error;

    // The hostile strings must round-trip exactly through the parser.
    // Only tid 0 is the run's track; tid 1 is the sweep track.
    bool sawTitle = false;
    for (const auto &ev : doc.at("traceEvents").arr) {
        const auto *name = ev.find("name");
        if (name && name->str == "thread_name" &&
            ev.at("tid").num == 0.0) {
            const std::string got = ev.at("args").at("name").str;
            EXPECT_EQ(got, "run 0: quote\" backslash\\ newline\n end");
            sawTitle = true;
        }
    }
    EXPECT_TRUE(sawTitle);
}

TEST(Telemetry, NullAndEmptyBuffersKeepTids)
{
    std::vector<RunTelemetry> runs(3);
    runs[2].span("run", 0, 10);   // only run 2 has events
    std::vector<const RunTelemetry *> p = {nullptr, &runs[1], &runs[2]};
    TelemetrySweepInfo info;
    info.label = "gaps";
    info.runs = 3;
    const std::string body = obs::renderSweepTrace(info, p);

    obs::json::Value doc;
    std::string error;
    ASSERT_TRUE(obs::json::parse(body, doc, &error)) << error;
    // Run 2's span keeps tid 2 even though runs 0/1 emitted nothing,
    // and the sweep track stays at tid 3.
    bool sawRunSpan = false;
    for (const auto &ev : doc.at("traceEvents").arr) {
        const auto *name = ev.find("name");
        const auto *ph = ev.find("ph");
        if (name && ph && ph->str == "X" && name->str == "run") {
            EXPECT_EQ(ev.at("tid").num, 2.0);
            sawRunSpan = true;
        }
        if (name && name->str == "stats-merge") {
            EXPECT_EQ(ev.at("tid").num, 3.0);
        }
    }
    EXPECT_TRUE(sawRunSpan);
}

TEST(Telemetry, DirOverrideBeatsEnvironment)
{
    obs::setTelemetryDir("/some/dir");
    EXPECT_EQ(obs::telemetryDir(), "/some/dir");
    obs::setTelemetryDir("", true);   // reset: back to the environment
    const char *env = std::getenv("RRS_TELEMETRY");
    EXPECT_EQ(obs::telemetryDir(), env ? env : "");
}

// The end-to-end determinism lock: one sweep exported at 1, 2 and 4
// threads must produce byte-identical trace files.  The trace cache is
// warmed by the first sweep, so the three measured sweeps see identical
// capture deltas (zero) — the same reasoning the BENCH_*.json exact
// metrics rely on.
TEST(TelemetrySweep, TraceBytesIdenticalAcrossThreadCounts)
{
    const std::string dir = testing::TempDir() + "telemetry_det";
    std::filesystem::create_directories(dir);

    auto makeItems = [] {
        constexpr std::uint64_t insts = 10'000;
        std::vector<harness::SweepItem> items;
        for (const char *name : {"int_crc", "fp_fir"}) {
            const auto &w = workloads::workload(name);
            for (std::uint32_t regs : {56u, 96u}) {
                auto base = harness::baselineConfig(regs);
                base.maxInsts = insts;
                items.push_back(harness::sweepItem(w, base));
                auto prop = harness::reuseConfig(regs);
                prop.maxInsts = insts;
                items.push_back(harness::sweepItem(w, prop));
            }
        }
        return items;
    };

    // Warm the trace cache without telemetry so every exported sweep
    // sees the same (zero) capture delta.
    {
        harness::SweepRunner warm(1);
        warm.outcomes(makeItems());
    }

    obs::setTelemetryDir(dir);
    std::vector<std::string> bodies;
    for (unsigned threads : {1u, 2u, 4u}) {
        harness::SweepRunner runner(threads);
        // Same label for all three: the label is part of the trace
        // body (process_name), and the sweep sequence number already
        // keeps the file names apart.
        runner.setTelemetryLabel("det");
        runner.run(makeItems());
        const std::string &path = runner.lastTelemetryPath();
        ASSERT_FALSE(path.empty()) << "threads=" << threads;
        bodies.push_back(slurp(path));
    }
    obs::setTelemetryDir("", true);

    ASSERT_EQ(bodies.size(), 3u);
    EXPECT_FALSE(bodies[0].empty());
    EXPECT_EQ(bodies[0], bodies[1]) << "1 vs 2 threads";
    EXPECT_EQ(bodies[0], bodies[2]) << "1 vs 4 threads";

    // And the trace is a valid Chrome trace-event document.
    obs::json::Value doc;
    std::string error;
    ASSERT_TRUE(obs::json::parse(bodies[0], doc, &error)) << error;
    EXPECT_NE(doc.find("traceEvents"), nullptr);
}

// The trace file-name grammar rrs-teleview sorts by: label and sweep
// index round-trip, and the index is numeric — `_sweep10` must order
// after `_sweep2`, which a lexicographic file listing gets wrong.
TEST(TelemetrySweep, ParseSweepTraceName)
{
    std::string label;
    std::uint64_t seq = 0;

    ASSERT_TRUE(obs::parseSweepTraceName("fig11_sweep0.trace.json",
                                         label, seq));
    EXPECT_EQ(label, "fig11");
    EXPECT_EQ(seq, 0u);

    // The label itself may contain "_sweep"; the index is whatever
    // follows the last occurrence.
    ASSERT_TRUE(obs::parseSweepTraceName(
        "my_sweep_bench_sweep12.trace.json", label, seq));
    EXPECT_EQ(label, "my_sweep_bench");
    EXPECT_EQ(seq, 12u);

    ASSERT_TRUE(obs::parseSweepTraceName("x_sweep10.trace.json",
                                         label, seq));
    EXPECT_EQ(seq, 10u);

    // Not sweep traces: wrong suffix, no marker, empty or non-numeric
    // index, empty label.
    EXPECT_FALSE(obs::parseSweepTraceName("fig11_sweep0.json",
                                          label, seq));
    EXPECT_FALSE(obs::parseSweepTraceName("fig11.trace.json",
                                          label, seq));
    EXPECT_FALSE(obs::parseSweepTraceName("fig11_sweep.trace.json",
                                          label, seq));
    EXPECT_FALSE(obs::parseSweepTraceName("fig11_sweep1a.trace.json",
                                          label, seq));
    EXPECT_FALSE(obs::parseSweepTraceName("_sweep3.trace.json",
                                          label, seq));
}

// Telemetry off (no directory): the sweep must not write anything and
// lastTelemetryPath stays empty.
TEST(TelemetrySweep, NoDirectoryMeansNoTrace)
{
    obs::setTelemetryDir("");
    const auto &w = workloads::workload("int_crc");
    auto cfg = harness::baselineConfig(64);
    cfg.maxInsts = 2000;
    harness::SweepRunner runner(1);
    runner.run({harness::sweepItem(w, cfg)});
    EXPECT_TRUE(runner.lastTelemetryPath().empty());
    obs::setTelemetryDir("", true);
}

} // namespace
