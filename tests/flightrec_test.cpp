// Tests for the crash-time flight recorder (obs/flightrec.hh): ring
// semantics, the dump format, and the crash path itself — an injected
// rename-audit fault must panic AND leave a dump file carrying the
// run's identifying context plus the recorded event tail.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "obs/flightrec.hh"
#include "rename/audit.hh"
#include "rename/reuse.hh"
#include "workloads/workloads.hh"

namespace {

namespace fs = std::filesystem;
using namespace rrs;
using obs::FlightEvent;
using obs::FlightEventKind;
using obs::FlightRecorder;

FlightEvent
ev(std::uint64_t cycle, FlightEventKind kind, std::uint16_t reg = 0)
{
    FlightEvent e;
    e.cycle = cycle;
    e.seq = cycle * 10;
    e.kind = kind;
    e.reg = reg;
    e.freeInt = 7;
    e.freeFp = 9;
    return e;
}

TEST(FlightRecorder, KeepsLastDepthEventsOldestFirst)
{
    FlightRecorder fr(4);
    EXPECT_EQ(fr.depth(), 4u);
    for (std::uint64_t c = 1; c <= 6; ++c)
        fr.record(ev(c, FlightEventKind::Alloc));
    const auto got = fr.events();
    ASSERT_EQ(got.size(), 4u);
    // Cycles 1 and 2 fell off the ring; 3..6 remain in order.
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].cycle, i + 3);
        EXPECT_EQ(got[i].seq, (i + 3) * 10);
    }
}

TEST(FlightRecorder, PartialFillReturnsOnlyRecorded)
{
    FlightRecorder fr(8);
    fr.record(ev(1, FlightEventKind::Alloc));
    fr.record(ev(2, FlightEventKind::Commit));
    const auto got = fr.events();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].kind, FlightEventKind::Alloc);
    EXPECT_EQ(got[1].kind, FlightEventKind::Commit);
}

TEST(FlightRecorder, ZeroDepthClampsToOne)
{
    FlightRecorder fr(0);
    EXPECT_EQ(fr.depth(), 1u);
    fr.record(ev(1, FlightEventKind::Flush));
    fr.record(ev(2, FlightEventKind::Squash));
    const auto got = fr.events();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].kind, FlightEventKind::Squash);
}

TEST(FlightRecorder, KindNames)
{
    EXPECT_STREQ(obs::flightEventKindName(FlightEventKind::Alloc),
                 "alloc");
    EXPECT_STREQ(obs::flightEventKindName(FlightEventKind::Commit),
                 "commit");
    EXPECT_STREQ(obs::flightEventKindName(FlightEventKind::Squash),
                 "squash");
    EXPECT_STREQ(obs::flightEventKindName(FlightEventKind::Flush),
                 "flush");
}

TEST(FlightRecorder, DumpCarriesContextAndEvents)
{
    FlightRecorder fr(4);
    fr.setContext("workload", "int_crc");
    fr.setContext("scheme", "reuse");
    fr.setContext("sweep_seed", "12345");
    fr.record(ev(42, FlightEventKind::Alloc, 17));
    std::ostringstream os;
    fr.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("workload: int_crc"), std::string::npos) << text;
    EXPECT_NE(text.find("scheme: reuse"), std::string::npos);
    EXPECT_NE(text.find("sweep_seed: 12345"), std::string::npos);
    EXPECT_NE(text.find("cycle 42"), std::string::npos);
    EXPECT_NE(text.find("alloc"), std::string::npos);
    EXPECT_NE(text.find("p17"), std::string::npos);
    EXPECT_NE(text.find("freeInt 7 freeFp 9"), std::string::npos);
}

TEST(FlightRecorder, DumpToFileHonoursDirOverride)
{
    const std::string dir = testing::TempDir() + "flightrec_unit";
    fs::create_directories(dir);
    obs::setFlightRecDumpDir(dir);
    FlightRecorder fr(2);
    fr.setContext("workload", "unit");
    fr.record(ev(1, FlightEventKind::Commit));
    const std::string path = fr.dumpToFile();
    obs::setFlightRecDumpDir("", true);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.rfind(dir, 0), 0u) << path;
    std::ifstream is(path);
    ASSERT_TRUE(is.is_open());
    std::ostringstream buf;
    buf << is.rdbuf();
    EXPECT_NE(buf.str().find("workload: unit"), std::string::npos);
}

// A running simulation with auditing on records real rename traffic
// through the core's hooks (harness integration, no crash involved).
TEST(FlightRecorder, HarnessRunRecordsRenameTraffic)
{
    const auto &w = workloads::workload("int_crc");
    harness::RunConfig cfg = harness::reuseConfig(64);
    cfg.maxInsts = 5000;
    cfg.obs.auditInterval = 1;
    cfg.obs.flightRecDepth = 64;
    // runOn owns the recorder; this test only proves the run completes
    // with the hooks live and stays bit-identical to a hook-free run.
    auto withRec = harness::runOn(w, cfg);
    harness::RunConfig bare = cfg;
    bare.obs.flightRecDepth = 0;
    bare.obs.auditDisabled = true;
    auto without = harness::runOn(w, bare);
    EXPECT_EQ(withRec.sim.cycles, without.sim.cycles);
    EXPECT_EQ(withRec.sim.committedInsts, without.sim.committedInsts);
}

#if GTEST_HAS_DEATH_TEST
// Extracted from the death-test macro: commas inside brace
// initialisers would otherwise split the macro's arguments.
void
crashWithArmedRecorder()
{
    using rename::ReuseRenamer;
    rename::ReuseRenamerParams p;
    p.intBanks = {32, 0, 0, 16};
    p.fpBanks = {32, 0, 0, 16};
    ReuseRenamer rn(p);

    FlightRecorder fr(8);
    fr.setContext("workload", "crash_unit");
    fr.setContext("scheme", "reuse");
    fr.setContext("sweep_seed", "777");
    fr.record(ev(100, FlightEventKind::Alloc, 3));
    fr.record(ev(101, FlightEventKind::Commit, 3));
    fr.arm();

    if (!rn.injectFault(ReuseRenamer::InjectedFault::DoubleFree))
        std::abort();   // wrong message: the test fails on the regex
    rename::RenameAuditor auditor;
    auditor.check(rn, "flightrec-test");
}

// The crash path end to end: an injected audit fault panics, and the
// armed recorder's crash hook must leave a dump file containing the
// run context and the event tail recorded before the violation.
TEST(FlightRecorderDeathTest, AuditFaultDumpsFlightRecording)
{
    const std::string dir = testing::TempDir() + "flightrec_crash";
    fs::remove_all(dir);
    fs::create_directories(dir);
    obs::setFlightRecDumpDir(dir);

    EXPECT_DEATH(crashWithArmedRecorder(),
                 "rename audit failed at flightrec-test");
    obs::setFlightRecDumpDir("", true);

    // The child wrote its dump before dying; find and inspect it.
    std::vector<std::string> dumps;
    for (const auto &e : fs::directory_iterator(dir)) {
        const std::string name = e.path().filename().string();
        if (name.rfind("flightrec_", 0) == 0)
            dumps.push_back(e.path().string());
    }
    ASSERT_EQ(dumps.size(), 1u)
        << "expected exactly one crash dump in " << dir;
    std::ifstream is(dumps[0]);
    ASSERT_TRUE(is.is_open());
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string text = buf.str();
    EXPECT_NE(text.find("workload: crash_unit"), std::string::npos)
        << text;
    EXPECT_NE(text.find("scheme: reuse"), std::string::npos);
    EXPECT_NE(text.find("sweep_seed: 777"), std::string::npos);
    EXPECT_NE(text.find("cycle 100"), std::string::npos);
    EXPECT_NE(text.find("cycle 101"), std::string::npos);
    EXPECT_NE(text.find("commit"), std::string::npos);
}
#endif

} // namespace
