// Unit tests for the ISA definition: opcode table consistency,
// register naming, and instruction formatting.

#include <gtest/gtest.h>

#include "isa/isa.hh"

namespace {

using namespace rrs;
using namespace rrs::isa;

TEST(OpInfoTable, EveryOpcodeHasAName)
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Opcode::NumOpcodes); ++i) {
        auto op = static_cast<Opcode>(i);
        const OpInfo &inf = opInfo(op);
        ASSERT_NE(inf.name, nullptr);
        EXPECT_GT(std::string(inf.name).size(), 0u);
        // Round trip through the name lookup.
        auto back = opcodeFromName(inf.name);
        ASSERT_TRUE(back.has_value()) << inf.name;
        EXPECT_EQ(*back, op);
    }
}

TEST(OpInfoTable, MemoryOpsHaveSizes)
{
    EXPECT_EQ(opInfo(Opcode::Ldr).memBytes, 8);
    EXPECT_EQ(opInfo(Opcode::Ldrw).memBytes, 4);
    EXPECT_EQ(opInfo(Opcode::Ldrb).memBytes, 1);
    EXPECT_EQ(opInfo(Opcode::Str).memBytes, 8);
    EXPECT_EQ(opInfo(Opcode::Fldr).memBytes, 8);
    EXPECT_EQ(opInfo(Opcode::Add).memBytes, 0);
    EXPECT_TRUE(isLoad(Opcode::Fldr));
    EXPECT_TRUE(isStore(Opcode::Fstr));
    EXPECT_FALSE(isLoad(Opcode::Str));
}

TEST(OpInfoTable, BranchKinds)
{
    EXPECT_EQ(opInfo(Opcode::Beq).branch, BranchKind::Cond);
    EXPECT_EQ(opInfo(Opcode::B).branch, BranchKind::Uncond);
    EXPECT_EQ(opInfo(Opcode::Bl).branch, BranchKind::Call);
    EXPECT_EQ(opInfo(Opcode::Ret).branch, BranchKind::Return);
    EXPECT_EQ(opInfo(Opcode::Br).branch, BranchKind::Indirect);
    EXPECT_TRUE(isControl(Opcode::Bl));
    EXPECT_FALSE(isControl(Opcode::Add));
}

TEST(OpInfoTable, DestAndSourceClasses)
{
    // fcvt: int -> fp.
    EXPECT_TRUE(opInfo(Opcode::Fcvt).hasDest);
    EXPECT_EQ(opInfo(Opcode::Fcvt).destCls, RegClass::Float);
    EXPECT_EQ(opInfo(Opcode::Fcvt).srcCls[0], RegClass::Int);
    // fcvti: fp -> int.
    EXPECT_EQ(opInfo(Opcode::Fcvti).destCls, RegClass::Int);
    EXPECT_EQ(opInfo(Opcode::Fcvti).srcCls[0], RegClass::Float);
    // fp compare produces an int.
    EXPECT_EQ(opInfo(Opcode::Flt).destCls, RegClass::Int);
    // Stores and branches have no destination.
    EXPECT_FALSE(opInfo(Opcode::Str).hasDest);
    EXPECT_FALSE(opInfo(Opcode::Beq).hasDest);
    // Calls write the link register.
    EXPECT_TRUE(opInfo(Opcode::Bl).hasDest);
    // fmadd reads three fp sources.
    EXPECT_EQ(opInfo(Opcode::Fmadd).numSrcs, 3);
}

TEST(RegNames, Formatting)
{
    EXPECT_EQ(regName(intReg(0)), "x0");
    EXPECT_EQ(regName(intReg(zeroReg)), "xzr");
    EXPECT_EQ(regName(fpReg(5)), "f5");
    EXPECT_EQ(regName(RegId{}), "-");
}

TEST(StaticInstFormat, AluAndMem)
{
    StaticInst add;
    add.op = Opcode::Add;
    add.dest = intReg(1);
    add.srcs[0] = intReg(2);
    add.srcs[1] = intReg(3);
    EXPECT_EQ(add.toString(), "add x1, x2, x3");

    StaticInst ldr;
    ldr.op = Opcode::Ldr;
    ldr.dest = intReg(4);
    ldr.srcs[0] = intReg(5);
    ldr.imm = 16;
    EXPECT_EQ(ldr.toString(), "ldr x4, [x5, #16]");

    StaticInst str;
    str.op = Opcode::Str;
    str.srcs[0] = intReg(1);
    str.srcs[1] = intReg(2);
    str.imm = 0;
    EXPECT_EQ(str.toString(), "str x1, [x2, #0]");
}

TEST(StaticInstHelpers, Classes)
{
    StaticInst si;
    si.op = Opcode::Fmadd;
    EXPECT_EQ(si.cls(), InstClass::FpMult);
    EXPECT_EQ(si.numSrcs(), 3);
    EXPECT_TRUE(si.hasDest());
    si.op = Opcode::Halt;
    EXPECT_FALSE(si.hasDest());
}

} // namespace
