// Tests for the workload suite: every kernel must assemble, run to
// completion (halt, not the safety cap), produce a stable checksum,
// and exhibit value-usage statistics in the band its suite stands in
// for.

#include <gtest/gtest.h>

#include "trace/analysis.hh"
#include "workloads/workloads.hh"

namespace {

using namespace rrs;
using workloads::Workload;

class EveryWorkload : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EveryWorkload, RunsToHaltDeterministically)
{
    const Workload &w = workloads::workload(GetParam());
    // makeEmulator skips the init phase (warmup) and then caps the
    // stream; a generous cap means the run total staying below it
    // proves the kernel halted on its own.
    auto e1 = workloads::makeEmulator(w, 8'000'000);
    std::uint64_t n1 = e1->run();
    EXPECT_LT(n1, 8'000'000u) << w.name << " did not halt";
    EXPECT_GT(n1, 100'000u) << w.name << " is too short to be meaningful";

    // Every kernel must declare a warmup boundary for measurement.
    EXPECT_TRUE(workloads::program(w).symbols.count("warmup_done"))
        << w.name;

    // Checksum lives at the program's `result` symbol and must be
    // reproducible.
    Addr result = workloads::program(w).symbol("result");
    std::uint64_t sum1 = e1->memory().read(result, 8);

    auto e2 = workloads::makeEmulator(w, 8'000'000);
    e2->run();
    EXPECT_EQ(e2->memory().read(result, 8), sum1) << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, EveryWorkload,
    ::testing::Values("int_sort", "int_hash", "int_crc", "int_sieve",
                      "int_match", "int_graph", "int_lz", "fp_matmul",
                      "fp_fir", "fp_jacobi", "fp_nbody", "fp_horner",
                      "fp_chain", "fp_blur", "media_adpcm", "media_dct",
                      "media_sobel", "media_g711", "cog_gmm", "cog_dnn",
                      "cog_knn"));

TEST(WorkloadRegistry, SuitesArePopulated)
{
    EXPECT_EQ(workloads::suiteWorkloads("specint").size(), 7u);
    EXPECT_EQ(workloads::suiteWorkloads("specfp").size(), 7u);
    EXPECT_EQ(workloads::suiteWorkloads("media").size(), 4u);
    EXPECT_EQ(workloads::suiteWorkloads("cognitive").size(), 3u);
    EXPECT_EQ(workloads::allWorkloads().size(), 21u);
}

TEST(WorkloadCharacter, FpSuiteHasMoreSingleUseThanIntSuite)
{
    auto suiteSingleUse = [](const std::string &suite) {
        double sum = 0;
        auto list = workloads::suiteWorkloads(suite);
        for (const auto &w : list) {
            auto stream = workloads::makeEmulator(w, 300'000);
            auto rep = trace::analyzeUsage(*stream, 300'000);
            sum += rep.fracSingleConsumer();
        }
        return sum / static_cast<double>(list.size());
    };
    double fp = suiteSingleUse("specfp");
    double intg = suiteSingleUse("specint");
    // The paper's headline motivation: FP codes have notably more
    // single-consumer values than integer codes.
    EXPECT_GT(fp, intg);
    EXPECT_GT(fp, 0.35);    // paper: > 50% of instructions for SPECfp
    EXPECT_GT(intg, 0.15);  // paper: > 30% for SPECint
}

TEST(WorkloadCharacter, MostValuesHaveFewConsumers)
{
    // Paper Figure 2: single-consumer values dominate.
    const Workload &w = workloads::workload("fp_horner");
    auto stream = workloads::makeEmulator(w, 200'000);
    auto rep = trace::analyzeUsage(*stream, 200'000);
    EXPECT_GT(rep.fracConsumers(1), 0.4);
}

TEST(WorkloadCharacter, SortCheckSumsSorted)
{
    // int_sort's checksum is first+last element of the sorted array:
    // re-derive by peeking at memory after the run.
    const Workload &w = workloads::workload("int_sort");
    auto e = workloads::makeEmulator(w, 3'000'000);
    e->run();
    Addr arr = workloads::program(w).symbol("arr");
    // The final round's array must be sorted ascending.
    std::uint64_t prev = e->memory().read(arr, 8);
    for (int i = 1; i < 256; ++i) {
        std::uint64_t v = e->memory().read(arr + 8 * static_cast<Addr>(i), 8);
        ASSERT_LE(prev, v) << "array not sorted at " << i;
        prev = v;
    }
}

TEST(WorkloadCharacter, SieveCountsPrimes)
{
    const Workload &w = workloads::workload("int_sieve");
    auto e = workloads::makeEmulator(w, 3'000'000);
    e->run();
    Addr result = workloads::program(w).symbol("result");
    // pi(32768) = 3512; the kernel accumulates over 2 rounds.
    EXPECT_EQ(e->memory().read(result, 8), 2u * 3512u);
}

} // namespace
