// Parameterized whole-pipeline sweeps: every (scheme, register-file
// size, pipeline shape) combination must commit exactly the
// architectural instruction stream, under fault storms, interrupt
// storms, and squash-heavy control flow.

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace {

using namespace rrs;
using harness::RunConfig;

std::uint64_t
emulatedLength(const workloads::Workload &w, std::uint64_t cap)
{
    auto e = workloads::makeEmulator(w, cap);
    std::uint64_t start = e->instCount();
    e->run();
    return e->instCount() - start;
}

struct SweepPoint
{
    const char *workload;
    const char *scheme;   //!< rename-scheme registry key
    std::uint32_t regs;
};

class PipelineSweep : public ::testing::TestWithParam<SweepPoint>
{
};

TEST_P(PipelineSweep, CommitsExactlyTheStream)
{
    const auto &p = GetParam();
    const auto &w = workloads::workload(p.workload);
    const std::uint64_t cap = 40'000;
    std::uint64_t expected = emulatedLength(w, cap);

    RunConfig cfg = harness::schemeConfig(p.scheme, p.regs);
    cfg.maxInsts = cap;
    auto out = harness::runOn(w, cfg);
    EXPECT_EQ(out.sim.committedInsts, expected);
    EXPECT_GT(out.sim.ipc(), 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PipelineSweep,
    ::testing::Values(
        SweepPoint{"int_sort", "baseline", 48},
        SweepPoint{"int_sort", "reuse", 48},
        SweepPoint{"int_hash", "reuse", 56},
        SweepPoint{"int_graph", "baseline", 64},
        SweepPoint{"int_graph", "reuse", 64},
        SweepPoint{"fp_matmul", "baseline", 48},
        SweepPoint{"fp_matmul", "reuse", 48},
        SweepPoint{"fp_nbody", "reuse", 56},
        SweepPoint{"fp_horner", "reuse", 112},
        SweepPoint{"media_adpcm", "reuse", 48},
        SweepPoint{"media_dct", "baseline", 96},
        SweepPoint{"media_dct", "reuse", 96},
        SweepPoint{"cog_gmm", "reuse", 72},
        SweepPoint{"cog_dnn", "baseline", 80},
        SweepPoint{"cog_dnn", "reuse", 80}),
    [](const auto &info) {
        return std::string(info.param.workload) + "_" +
               info.param.scheme + "_" +
               std::to_string(info.param.regs);
    });

TEST(PipelineStress, FaultStormStillExact)
{
    // One load in twenty faults: constant pipeline flushes with
    // shadow-cell recovery in the reuse scheme.
    const auto &w = workloads::workload("int_hash");
    std::uint64_t expected = emulatedLength(w, 30'000);
    for (const char *scheme : {"baseline", "reuse"}) {
        RunConfig cfg = harness::schemeConfig(scheme, 56);
        cfg.maxInsts = 30'000;
        cfg.core.loadFaultProbability = 0.05;
        auto out = harness::runOn(w, cfg);
        EXPECT_EQ(out.sim.committedInsts, expected);
        EXPECT_GT(out.exceptions, 10);
    }
}

TEST(PipelineStress, InterruptStormStillExact)
{
    const auto &w = workloads::workload("fp_fir");
    std::uint64_t expected = emulatedLength(w, 30'000);
    RunConfig cfg = harness::reuseConfig(48);
    cfg.maxInsts = 30'000;
    cfg.core.interruptInterval = 600;   // flush every ~600 cycles
    auto out = harness::runOn(w, cfg);
    EXPECT_EQ(out.sim.committedInsts, expected);
}

TEST(PipelineStress, FaultsAndInterruptsTogether)
{
    const auto &w = workloads::workload("int_graph");
    std::uint64_t expected = emulatedLength(w, 25'000);
    RunConfig cfg = harness::reuseConfig(48);
    cfg.maxInsts = 25'000;
    cfg.core.loadFaultProbability = 0.02;
    cfg.core.interruptInterval = 1500;
    auto out = harness::runOn(w, cfg);
    EXPECT_EQ(out.sim.committedInsts, expected);
}

TEST(PipelineShape, NarrowAndWideCoresBothExact)
{
    const auto &w = workloads::workload("fp_jacobi");
    std::uint64_t expected = emulatedLength(w, 30'000);

    // Narrow: single-issue-ish machine.
    {
        RunConfig cfg = harness::reuseConfig(64);
        cfg.maxInsts = 30'000;
        cfg.core.fetchWidth = 1;
        cfg.core.renameWidth = 1;
        cfg.core.issueWidth = 1;
        cfg.core.commitWidth = 1;
        cfg.core.wbWidth = 2;
        auto out = harness::runOn(w, cfg);
        EXPECT_EQ(out.sim.committedInsts, expected);
        EXPECT_LE(out.sim.ipc(), 1.0 + 1e-9);
    }
    // Wide: 8-wide front end, deeper queues.
    {
        RunConfig cfg = harness::reuseConfig(112);
        cfg.maxInsts = 30'000;
        cfg.core.fetchWidth = 8;
        cfg.core.renameWidth = 8;
        cfg.core.issueWidth = 8;
        cfg.core.commitWidth = 8;
        cfg.core.wbWidth = 8;
        cfg.core.iqEntries = 96;
        auto out = harness::runOn(w, cfg);
        EXPECT_EQ(out.sim.committedInsts, expected);
    }
}

TEST(PipelineShape, TinyQueuesStillDrain)
{
    const auto &w = workloads::workload("int_crc");
    std::uint64_t expected = emulatedLength(w, 20'000);
    RunConfig cfg = harness::reuseConfig(48);
    cfg.maxInsts = 20'000;
    cfg.core.robEntries = 8;
    cfg.core.iqEntries = 4;
    cfg.core.loadQueueEntries = 2;
    cfg.core.storeQueueEntries = 2;
    cfg.core.fetchQueueEntries = 4;
    auto out = harness::runOn(w, cfg);
    EXPECT_EQ(out.sim.committedInsts, expected);
}

TEST(PipelineShape, MispredictPenaltySlowsBranchyCode)
{
    const auto &w = workloads::workload("int_sort");
    RunConfig fast = harness::baselineConfig(96);
    fast.maxInsts = 40'000;
    fast.core.mispredictPenalty = 1;
    RunConfig slow = fast;
    slow.core.mispredictPenalty = 40;
    auto of = harness::runOn(w, fast);
    auto os = harness::runOn(w, slow);
    EXPECT_GT(os.sim.cycles, of.sim.cycles);
}

TEST(PipelineShape, WrongPathPressureCostsRegisters)
{
    // With wrong-path modelling on, a small register file sees more
    // pressure than with it off (wrong-path instructions allocate).
    const auto &w = workloads::workload("int_sort");
    RunConfig on = harness::reuseConfig(48);
    on.maxInsts = 40'000;
    RunConfig off = on;
    off.core.modelWrongPath = false;
    auto o_on = harness::runOn(w, on);
    auto o_off = harness::runOn(w, off);
    EXPECT_EQ(o_on.sim.committedInsts, o_off.sim.committedInsts);
}

} // namespace
