// Tests for the binary trace-file codec (trace/tracefile.hh): a
// write → read round trip must reproduce every DynInst field exactly,
// and every class of corrupt input (short file, bad magic, wrong
// version, truncation, flipped digest) must be rejected with a clear
// fatal message — never a crash or a silently wrong trace.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "trace/recorded.hh"
#include "trace/tracefile.hh"
#include "workloads/workloads.hh"

namespace {

using namespace rrs;
using trace::DynInst;

std::string
tmpPath(const char *name)
{
    return ::testing::TempDir() + name;
}

std::vector<char>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void
spit(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A small trace that exercises every optional field: branches (taken
// and not), memory (effAddr), an fp immediate, negative immediates,
// invalid source registers.
trace::TracePtr
sampleTrace()
{
    std::vector<DynInst> insts;
    std::uint64_t seq = 1'000'000;  // non-zero start: seq is delta-coded
    Addr pc = isa::textBase;
    auto push = [&](isa::StaticInst si, bool taken = false,
                    Addr effAddr = invalidAddr, Addr nextPc = 0) {
        DynInst di;
        di.seq = seq;
        di.pc = pc;
        di.si = si;
        di.nextPc = nextPc ? nextPc : pc + isa::instBytes;
        di.taken = taken;
        di.effAddr = effAddr;
        insts.push_back(di);
        seq += 3;  // gaps in seq must survive the delta coding
        pc = di.nextPc;
    };

    isa::StaticInst add;
    add.op = isa::Opcode::Add;
    add.dest = isa::intReg(1);
    add.srcs = {isa::intReg(2), isa::intReg(3), isa::RegId{}};
    push(add);

    isa::StaticInst addi;
    addi.op = isa::Opcode::Addi;
    addi.dest = isa::intReg(4);
    addi.srcs = {isa::intReg(1), isa::RegId{}, isa::RegId{}};
    addi.imm = -123456789;  // negative: exercises zigzag
    push(addi);

    isa::StaticInst ldr;
    ldr.op = isa::Opcode::Ldr;
    ldr.dest = isa::intReg(5);
    ldr.srcs = {isa::intReg(28), isa::RegId{}, isa::RegId{}};
    ldr.imm = 16;
    push(ldr, false, 0x7fff0010);

    isa::StaticInst fmovi;
    fmovi.op = isa::Opcode::Fmovi;
    fmovi.dest = isa::fpReg(0);
    fmovi.fimm = -0.0;  // sign of zero must survive the bit copy
    push(fmovi);

    isa::StaticInst fmadd;
    fmadd.op = isa::Opcode::Fmadd;
    fmadd.dest = isa::fpReg(1);
    fmadd.srcs = {isa::fpReg(0), isa::fpReg(2), isa::fpReg(3)};
    push(fmadd);

    isa::StaticInst beq;
    beq.op = isa::Opcode::Beq;
    beq.srcs = {isa::intReg(1), isa::intReg(4), isa::RegId{}};
    beq.target = isa::textBase;
    push(beq, true, invalidAddr, isa::textBase);  // taken: pc goes back

    isa::StaticInst halt;
    halt.op = isa::Opcode::Halt;
    push(halt);

    return std::make_shared<trace::RecordedTrace>(
        "synthetic_codec_sample", 7, 0xdeadbeefcafef00dULL,
        std::move(insts));
}

std::uint64_t
fpBits(double d)
{
    std::uint64_t raw;
    std::memcpy(&raw, &d, sizeof(raw));
    return raw;
}

// --- Legacy v1 writer, replicated byte for byte -------------------------
// The production writer only emits the current version; this pins the
// v1 row-major wire format independently so the reader's backward-compat
// path keeps working even though no shipping code writes v1 any more.

void
v1Varint(std::vector<char> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>(
            static_cast<std::uint8_t>(v) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(static_cast<std::uint8_t>(v)));
}

std::uint64_t
v1Zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

void
v1U32(std::vector<char> &out, std::uint32_t v)
{
    for (unsigned b = 0; b < 4; ++b)
        out.push_back(static_cast<char>(
            static_cast<std::uint8_t>(v >> (8 * b))));
}

void
v1U64(std::vector<char> &out, std::uint64_t v)
{
    for (unsigned b = 0; b < 8; ++b)
        out.push_back(static_cast<char>(
            static_cast<std::uint8_t>(v >> (8 * b))));
}

std::uint64_t
v1PackReg(const isa::RegId &r)
{
    return (static_cast<std::uint64_t>(r.idx) << 1) |
           static_cast<std::uint64_t>(r.cls);
}

std::vector<char>
v1FileBytes(const trace::RecordedTrace &t)
{
    std::vector<char> buf;
    v1U32(buf, trace::traceFileMagic);
    v1U32(buf, 1);  // the legacy version
    v1Varint(buf, t.workload().size());
    for (char c : t.workload())
        buf.push_back(c);
    v1Varint(buf, t.cap());
    v1U64(buf, t.sourceHash());
    v1Varint(buf, t.size());

    std::uint64_t prevSeq = 0;
    for (const DynInst &di : t.insts()) {
        v1Varint(buf, di.seq - prevSeq);
        prevSeq = di.seq;
        v1Varint(buf, di.pc);
        v1Varint(buf, v1Zigzag(static_cast<std::int64_t>(di.nextPc) -
                               static_cast<std::int64_t>(di.pc)));

        std::uint64_t fbits = fpBits(di.si.fimm);
        std::uint8_t flags = 0;
        if (di.taken)
            flags |= 1u << 0;
        if (di.effAddr != invalidAddr)
            flags |= 1u << 1;
        if (fbits != 0)
            flags |= 1u << 2;
        if (di.si.target != invalidAddr)
            flags |= 1u << 3;
        buf.push_back(static_cast<char>(flags));

        buf.push_back(static_cast<char>(
            static_cast<std::uint8_t>(di.si.op)));
        v1Varint(buf, v1PackReg(di.si.dest));
        for (const auto &s : di.si.srcs)
            v1Varint(buf, v1PackReg(s));
        v1Varint(buf, v1Zigzag(di.si.imm));
        if (flags & (1u << 2))
            v1U64(buf, fbits);
        if (flags & (1u << 3))
            v1Varint(buf, di.si.target);
        if (flags & (1u << 1))
            v1Varint(buf, di.effAddr);
    }
    v1U64(buf, t.digest());  // v1 trailer: record digest only
    return buf;
}

void
expectSameTrace(const trace::RecordedTrace &a, const trace::RecordedTrace &b)
{
    EXPECT_EQ(a.workload(), b.workload());
    EXPECT_EQ(a.cap(), b.cap());
    EXPECT_EQ(a.sourceHash(), b.sourceHash());
    EXPECT_EQ(a.digest(), b.digest());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const DynInst &x = a[i];
        const DynInst &y = b[i];
        EXPECT_EQ(x.seq, y.seq) << i;
        EXPECT_EQ(x.pc, y.pc) << i;
        EXPECT_EQ(x.nextPc, y.nextPc) << i;
        EXPECT_EQ(x.taken, y.taken) << i;
        EXPECT_EQ(x.effAddr, y.effAddr) << i;
        EXPECT_EQ(x.si.op, y.si.op) << i;
        EXPECT_EQ(x.si.dest, y.si.dest) << i;
        EXPECT_EQ(x.si.srcs, y.si.srcs) << i;
        EXPECT_EQ(x.si.imm, y.si.imm) << i;
        EXPECT_EQ(fpBits(x.si.fimm), fpBits(y.si.fimm)) << i;
        EXPECT_EQ(x.si.target, y.si.target) << i;
    }
}

TEST(TraceFile, RoundTripSynthetic)
{
    trace::TracePtr t = sampleTrace();
    const std::string path = tmpPath("roundtrip_synth.rrstrace");
    trace::writeTraceFile(path, *t);

    trace::TracePtr back = trace::readTraceFile(path);
    ASSERT_TRUE(back);
    expectSameTrace(*t, *back);
}

TEST(TraceFile, RoundTripRealWorkload)
{
    const auto &w = workloads::workload("media_dct");
    trace::TracePtr t = workloads::captureTrace(w, 10'000);
    const std::string path = tmpPath("roundtrip_real.rrstrace");
    trace::writeTraceFile(path, *t);

    trace::TracePtr back = trace::readTraceFile(path);
    ASSERT_TRUE(back);
    expectSameTrace(*t, *back);

    // The decoded trace must replay exactly like the in-memory one.
    trace::ReplayStream stream(back);
    std::size_t n = 0;
    while (stream.next())
        ++n;
    EXPECT_EQ(n, t->size());
}

TEST(TraceFile, ReadsLegacyV1AndRepacksSilently)
{
    // A v1 file (row-major, single-digest trailer, no packed columns)
    // must read without any warning or error, reproduce every field,
    // and still serve packed columns — rebuilt on load from the
    // records, exactly as if the trace had been captured live.
    trace::TracePtr t = sampleTrace();
    const std::string path = tmpPath("legacy_v1.rrstrace");
    spit(path, v1FileBytes(*t));

    std::string error;
    std::uint32_t fileVersion = 0;
    trace::TracePtr back =
        trace::tryReadTraceFile(path, error, &fileVersion);
    ASSERT_TRUE(back) << error;
    EXPECT_EQ(fileVersion, 1u);
    expectSameTrace(*t, *back);
    EXPECT_EQ(back->packed().digest(), t->packed().digest());
    EXPECT_EQ(back->packed().size(), t->size());
}

TEST(TraceFile, ReadReportsCurrentVersion)
{
    trace::TracePtr t = sampleTrace();
    const std::string path = tmpPath("current_version.rrstrace");
    trace::writeTraceFile(path, *t);
    std::string error;
    std::uint32_t fileVersion = 0;
    trace::TracePtr back =
        trace::tryReadTraceFile(path, error, &fileVersion);
    ASSERT_TRUE(back) << error;
    EXPECT_EQ(fileVersion, trace::traceFileVersion);
}

TEST(TraceFile, FileNameEncodesKey)
{
    EXPECT_EQ(trace::traceFileName("fp_fir", 150'000),
              "fp_fir_150000.rrstrace");
}

TEST(TraceFile, TryReadReportsMissingFile)
{
    std::string error;
    trace::TracePtr t =
        trace::tryReadTraceFile(tmpPath("does_not_exist.rrstrace"), error);
    EXPECT_FALSE(t);
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(TraceFile, TryReadRejectsShortFile)
{
    const std::string path = tmpPath("short.rrstrace");
    spit(path, {'R', 'R'});
    std::string error;
    EXPECT_FALSE(trace::tryReadTraceFile(path, error));
    EXPECT_NE(error.find("too short"), std::string::npos) << error;
}

TEST(TraceFile, TryReadRejectsBadMagic)
{
    const std::string path = tmpPath("badmagic.rrstrace");
    auto bytes = std::vector<char>(64, '\0');
    bytes[0] = 'N';
    bytes[1] = 'O';
    bytes[2] = 'P';
    bytes[3] = 'E';
    spit(path, bytes);
    std::string error;
    EXPECT_FALSE(trace::tryReadTraceFile(path, error));
    EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
}

TEST(TraceFile, TryReadRejectsFutureVersion)
{
    trace::TracePtr t = sampleTrace();
    const std::string path = tmpPath("future.rrstrace");
    trace::writeTraceFile(path, *t);
    auto bytes = slurp(path);
    bytes[4] = 99;  // version field follows the 4-byte magic
    spit(path, bytes);
    std::string error;
    EXPECT_FALSE(trace::tryReadTraceFile(path, error));
    EXPECT_NE(error.find("unsupported trace version"), std::string::npos)
        << error;
    // Forward-compat diagnostic contract: the message must name both
    // the offending version and the file, so a user mixing binaries
    // and trace dirs can tell *which* file came from the future.
    EXPECT_NE(error.find("99"), std::string::npos) << error;
    EXPECT_NE(error.find(path), std::string::npos) << error;
}

TEST(TraceFile, TryReadRejectsTruncation)
{
    trace::TracePtr t = sampleTrace();
    const std::string path = tmpPath("trunc.rrstrace");
    trace::writeTraceFile(path, *t);
    auto bytes = slurp(path);
    bytes.resize(bytes.size() - 12);  // lose the trailer + some records
    spit(path, bytes);
    std::string error;
    EXPECT_FALSE(trace::tryReadTraceFile(path, error));
    EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST(TraceFile, TryReadRejectsFlippedPayloadByte)
{
    trace::TracePtr t = sampleTrace();
    const std::string path = tmpPath("flipped.rrstrace");
    trace::writeTraceFile(path, *t);
    auto bytes = slurp(path);
    // Flip one bit in the middle of the record payload: the digest
    // trailer must catch it (or the record decode must reject it).
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
    spit(path, bytes);
    std::string error;
    EXPECT_FALSE(trace::tryReadTraceFile(path, error));
    EXPECT_FALSE(error.empty());
}

TEST(TraceFile, TryReadRejectsFlippedDigest)
{
    trace::TracePtr t = sampleTrace();
    const std::string path = tmpPath("baddigest.rrstrace");
    trace::writeTraceFile(path, *t);
    auto bytes = slurp(path);
    bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
    spit(path, bytes);
    std::string error;
    EXPECT_FALSE(trace::tryReadTraceFile(path, error));
    EXPECT_NE(error.find("digest mismatch"), std::string::npos) << error;
}

// The fatal wrapper must exit(1) with the same clear messages — this is
// what rrs-tracetool and any direct readTraceFile caller sees.
using TraceFileDeath = ::testing::Test;

TEST(TraceFileDeath, FatalOnBadMagic)
{
    const std::string path = tmpPath("death_badmagic.rrstrace");
    spit(path, std::vector<char>(64, 'x'));
    EXPECT_EXIT({ trace::readTraceFile(path); },
                ::testing::ExitedWithCode(1), "bad magic");
}

TEST(TraceFileDeath, FatalOnTruncation)
{
    trace::TracePtr t = sampleTrace();
    const std::string path = tmpPath("death_trunc.rrstrace");
    trace::writeTraceFile(path, *t);
    auto bytes = slurp(path);
    bytes.resize(bytes.size() - 12);
    spit(path, bytes);
    EXPECT_EXIT({ trace::readTraceFile(path); },
                ::testing::ExitedWithCode(1), "truncated");
}

TEST(TraceFileDeath, FatalOnDigestMismatch)
{
    trace::TracePtr t = sampleTrace();
    const std::string path = tmpPath("death_digest.rrstrace");
    trace::writeTraceFile(path, *t);
    auto bytes = slurp(path);
    bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
    spit(path, bytes);
    EXPECT_EXIT({ trace::readTraceFile(path); },
                ::testing::ExitedWithCode(1), "digest mismatch");
}

TEST(TraceFileDeath, FatalWriteToUnwritablePath)
{
    trace::TracePtr t = sampleTrace();
    EXPECT_EXIT(
        { trace::writeTraceFile("/nonexistent-dir/x.rrstrace", *t); },
        ::testing::ExitedWithCode(1), "trace file");
}

TEST(TraceFile, TryWriteReportsUnwritablePath)
{
    trace::TracePtr t = sampleTrace();
    std::string error;
    EXPECT_FALSE(
        trace::tryWriteTraceFile("/nonexistent-dir/x.rrstrace", *t, error));
    EXPECT_FALSE(error.empty());
}

} // namespace
