// Lockstep golden test: a timing run must not corrupt architecture.
//
// The O3 core drives the functional emulator as its instruction stream
// (execute-at-fetch); wrong-path work is synthetic and squashed, and
// replays come from the core's internal buffer.  So after a timing run
// the driving emulator's architectural state — every integer and fp
// register plus the memory image — must equal that of a fresh,
// pure-functional emulation of the same workload to the same cap.

#include <gtest/gtest.h>

#include <cstring>

#include "bpred/bpred.hh"
#include "core/o3core.hh"
#include "harness/experiment.hh"
#include "isa/isa.hh"
#include "mem/memsystem.hh"
#include "rename/baseline.hh"
#include "rename/reuse.hh"
#include "workloads/workloads.hh"

namespace {

using namespace rrs;

constexpr std::uint64_t kInsts = 30'000;

std::uint64_t
fpBits(double d)
{
    std::uint64_t raw;
    std::memcpy(&raw, &d, sizeof(raw));
    return raw;
}

// Run `w` through the timing core with the given renamer and compare
// the stream emulator's final state against a functional oracle.
void
checkLockstep(const workloads::Workload &w, rename::Renamer &renamer)
{
    auto stream = workloads::makeEmulator(w, kInsts);
    mem::MemSystem memsys{mem::MemSystemParams{}};
    bpred::BranchPredictor bp{bpred::BPredParams{}};
    core::O3Core core(core::CoreParams{}, renamer, memsys, bp, *stream);
    auto sim = core.run();
    EXPECT_GT(sim.committedInsts, 0u);

    auto oracle = workloads::makeEmulator(w, kInsts);
    oracle->run();

    EXPECT_EQ(stream->instCount(), oracle->instCount());
    EXPECT_EQ(stream->halted(), oracle->halted());
    for (LogRegIndex r = 0; r < isa::numLogRegs; ++r) {
        EXPECT_EQ(stream->intReg(r), oracle->intReg(r)) << "x" << int{r};
        EXPECT_EQ(fpBits(stream->fpReg(r)), fpBits(oracle->fpReg(r)))
            << "f" << int{r};
    }
    EXPECT_EQ(stream->memory().digest(), oracle->memory().digest());
    EXPECT_EQ(stream->memory().mappedPages(),
              oracle->memory().mappedPages());
}

TEST(LockstepOracle, ReuseRenamerEveryWorkload)
{
    for (const auto &w : workloads::allWorkloads()) {
        SCOPED_TRACE(w.name);
        auto cfg = harness::reuseConfig(64);
        rename::ReuseRenamer renamer(cfg.rename.reuse);
        checkLockstep(w, renamer);
    }
}

TEST(LockstepOracle, BaselineRenamerEveryWorkload)
{
    for (const auto &w : workloads::allWorkloads()) {
        SCOPED_TRACE(w.name);
        rename::BaselineRenamer renamer(rename::BaselineParams{64, 64});
        checkLockstep(w, renamer);
    }
}

// The memory digest itself: order-independent, content-sensitive, and
// blind to pages that only ever held zeros (read()-equivalent states
// must digest equal).
TEST(MemoryDigest, ContentDefined)
{
    emu::SparseMemory a, b;
    a.write(0x1000, 0xdeadbeef, 8);
    a.write(0x200000, 42, 1);
    b.write(0x200000, 42, 1);
    b.write(0x1000, 0xdeadbeef, 8);
    EXPECT_EQ(a.digest(), b.digest());

    b.write(0x1000, 0xdeadbeee, 8);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(MemoryDigest, ZeroPagesInvisible)
{
    emu::SparseMemory a, b;
    a.write(0x5000, 7, 1);
    b.write(0x5000, 7, 1);
    // Touch a page in `b` but leave it all-zero: reads are identical
    // to an unmapped page, so the digest must be too.
    b.write(0x9000, 0, 8);
    EXPECT_GT(b.mappedPages(), a.mappedPages());
    EXPECT_EQ(a.digest(), b.digest());
}

} // namespace
