// Host-side phase profiler (obs/profiler.hh): nesting, the
// merge-after-join determinism contract across thread counts, the
// per-run latency aggregates, and the disabled fast path.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/sweep.hh"
#include "obs/profiler.hh"

namespace {

using namespace rrs;
using obs::PhaseNode;
using obs::PhaseTree;
using obs::Profiler;
using obs::ScopedPhase;

// Each TEST runs in its own process (gtest_discover_tests), so
// flipping the global enable and resetting the singleton is safe.
struct ProfilerOn
{
    ProfilerOn()
    {
        Profiler::setEnabled(true);
        Profiler::instance().reset();
    }
    ~ProfilerOn() { Profiler::setEnabled(false); }
};

TEST(Profiler, ScopedPhasesNestIntoATree)
{
    ProfilerOn on;
    PhaseTree tree;
    {
        Profiler::Bind bind(&tree);
        ScopedPhase outer("outer");
        {
            ScopedPhase inner("inner");
        }
        {
            ScopedPhase inner("inner");
        }
        ScopedPhase sibling("sibling");
    }
    ASSERT_TRUE(tree.atRoot());
    const PhaseNode *outer = tree.root().find("outer");
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(outer->count, 1u);
    const PhaseNode *inner = outer->find("inner");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->count, 2u);
    // "sibling" opened inside "outer"'s scope, so it nests under it.
    EXPECT_NE(outer->find("sibling"), nullptr);
    EXPECT_EQ(tree.root().find("sibling"), nullptr);
    EXPECT_GE(outer->seconds, inner->seconds);
}

TEST(Profiler, DisabledScopedPhaseRecordsNothing)
{
    Profiler::setEnabled(false);
    PhaseTree tree;
    Profiler::Bind bind(&tree);
    {
        ScopedPhase phase("ghost");
    }
    EXPECT_EQ(tree.root().find("ghost"), nullptr);
    EXPECT_TRUE(tree.root().children.empty());
}

// Smoke for the "<1% when off" claim: a large number of disabled
// ScopedPhases must cost near nothing and record nothing.  Wall-clock
// assertions are flaky under CI load, so this only checks behaviour;
// the measured overhead number lives in DESIGN.md.
TEST(Profiler, DisabledPathIsCheapSmoke)
{
    Profiler::setEnabled(false);
    for (int i = 0; i < 1'000'000; ++i) {
        ScopedPhase phase("hot");
    }
    Profiler::setEnabled(true);
    Profiler::instance().reset();
    PhaseTree tree;
    {
        Profiler::Bind bind(&tree);
        ScopedPhase phase("hot");
    }
    Profiler::setEnabled(false);
    const PhaseNode *hot = tree.root().find("hot");
    ASSERT_NE(hot, nullptr);
    EXPECT_EQ(hot->count, 1u);
}

TEST(Profiler, MergeFoldsCountsAndChildren)
{
    PhaseNode a;
    a.name = "root";
    PhaseNode *ax = a.child("x");
    ax->count = 2;
    ax->seconds = 1.0;
    ax->child("y")->count = 5;

    PhaseNode b;
    b.name = "root";
    PhaseNode *bx = b.child("x");
    bx->count = 3;
    bx->seconds = 0.5;
    bx->child("z")->count = 1;

    a.merge(b);
    const PhaseNode *x = a.find("x");
    ASSERT_NE(x, nullptr);
    EXPECT_EQ(x->count, 5u);
    EXPECT_DOUBLE_EQ(x->seconds, 1.5);
    ASSERT_NE(x->find("y"), nullptr);
    EXPECT_EQ(x->find("y")->count, 5u);
    ASSERT_NE(x->find("z"), nullptr);
    EXPECT_EQ(x->find("z")->count, 1u);
}

TEST(Profiler, RunAggregatesReportPercentiles)
{
    ProfilerOn on;
    // Three hand-built run trees with per-run "work" times of 1ms,
    // 2ms, 4ms: p50 must be the middle run, max the slowest.
    for (double ms : {1.0, 2.0, 4.0}) {
        PhaseTree tree;
        Profiler::Bind bind(&tree);
        PhaseNode *n = tree.enter("work");
        tree.leave(ms / 1e3);
        ASSERT_EQ(n->count, 1u);
        Profiler::instance().addRunTree(tree);
    }
    Profiler &p = Profiler::instance();
    EXPECT_EQ(p.runsMerged(), 3u);
    const PhaseNode *work = p.runTree().find("work");
    ASSERT_NE(work, nullptr);
    EXPECT_EQ(work->count, 3u);
    EXPECT_NEAR(work->seconds, 0.007, 1e-9);
    EXPECT_NEAR(p.runPercentileUs("work", 50), 2000.0, 1.0);
    EXPECT_NEAR(p.runPercentileUs("work", 100), 4000.0, 1.0);
    EXPECT_EQ(p.runPercentileUs("no-such-phase", 50), 0.0);
}

// Collect {path -> count} from the merged per-run tree.
void
flattenCounts(const PhaseNode &node, const std::string &prefix,
              std::map<std::string, std::uint64_t> &out)
{
    for (const auto &c : node.children) {
        const std::string path =
            prefix.empty() ? c->name : prefix + "/" + c->name;
        out[path] += c->count;
        flattenCounts(*c, path, out);
    }
}

// The determinism contract: the merged per-run phase counts are
// identical for every RRS_THREADS, because each run's phases land in
// its own tree and the trees merge post-join in submission order.
TEST(Profiler, RunTreeCountsIdenticalAcrossThreadCounts)
{
    ProfilerOn on;
    constexpr std::uint64_t insts = 5'000;
    auto buildItems = [] {
        std::vector<harness::SweepItem> items;
        for (const char *name : {"int_crc", "fp_fir"}) {
            const auto &w = workloads::workload(name);
            for (std::uint32_t regs : {56u, 96u}) {
                auto base = harness::baselineConfig(regs);
                base.maxInsts = insts;
                items.push_back(harness::sweepItem(w, base));
                auto prop = harness::reuseConfig(regs);
                prop.maxInsts = insts;
                items.push_back(harness::sweepItem(w, prop));
            }
        }
        return items;
    };

    // Prewarm the process-global trace cache: the first sweep of a
    // (workload, cap) pays a capture phase that later sweeps hit in
    // cache, which would skew the first-thread-count iteration.
    {
        harness::SweepRunner prewarm(1);
        prewarm.run(buildItems());
        Profiler::instance().reset();
    }

    std::map<std::string, std::uint64_t> ref;
    std::uint64_t refRuns = 0;
    for (unsigned threads : {1u, 2u, 4u}) {
        Profiler::instance().reset();
        harness::SweepRunner runner(threads);
        runner.run(buildItems());
        std::map<std::string, std::uint64_t> counts;
        flattenCounts(Profiler::instance().runTree(), "", counts);
        ASSERT_NE(counts.find("simulate"), counts.end())
            << "threads=" << threads;
        EXPECT_EQ(counts["simulate"], 8u) << "threads=" << threads;
        if (threads == 1) {
            ref = counts;
            refRuns = Profiler::instance().runsMerged();
        } else {
            EXPECT_EQ(counts, ref) << "threads=" << threads;
            EXPECT_EQ(Profiler::instance().runsMerged(), refRuns);
        }
    }
}

TEST(Profiler, ReportAndJsonIncludeRunPhases)
{
    ProfilerOn on;
    PhaseTree tree;
    {
        Profiler::Bind bind(&tree);
        ScopedPhase phase("simulate");
    }
    Profiler::instance().addRunTree(tree);

    std::ostringstream report;
    Profiler::instance().report(report);
    EXPECT_NE(report.str().find("phase profile"), std::string::npos);
    EXPECT_NE(report.str().find("simulate"), std::string::npos);
    EXPECT_NE(report.str().find("p95_us"), std::string::npos);

    std::ostringstream json;
    Profiler::instance().dumpJson(json);
    EXPECT_NE(json.str().find("\"runs_merged\": 1"), std::string::npos);
    EXPECT_NE(json.str().find("\"simulate\""), std::string::npos);
}

} // namespace
