// Unit tests for the work-stealing thread pool: slot-ordered results,
// exception propagation out of wait(), nested submission, and a no-op
// stress run.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "common/threadpool.hh"

namespace {

using rrs::ThreadPool;

TEST(ThreadPoolConfig, DefaultThreadCountHonoursEnv)
{
    ::setenv("RRS_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);
    ::setenv("RRS_THREADS", "0", 1);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
    ::unsetenv("RRS_THREADS");
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

TEST(ThreadPoolConfig, SingleLaneSpawnsNoWorkers)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.numWorkers(), 0u);
    EXPECT_EQ(pool.numThreads(), 1u);
}

TEST(ThreadPoolConfig, FourLanesSpawnThreeWorkers)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.numWorkers(), 3u);
    EXPECT_EQ(pool.numThreads(), 4u);
}

// Every task writes only its own slot, so the output must come back in
// submission order regardless of which worker ran which task.
TEST(ThreadPoolRun, SlotOrderedResults)
{
    for (unsigned threads : {1u, 2u, 4u}) {
        ThreadPool pool(threads);
        constexpr std::size_t n = 200;
        std::vector<std::size_t> out(n, 0);
        for (std::size_t i = 0; i < n; ++i)
            pool.submit([&out, i] { out[i] = i * i; });
        pool.wait();
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(out[i], i * i) << "threads=" << threads;
    }
}

TEST(ThreadPoolRun, CallerExecutesWhenNoWorkers)
{
    ThreadPool pool(1);
    std::atomic<int> count{0};
    for (int i = 0; i < 32; ++i)
        pool.submit([&count] { ++count; });
    // No workers exist, so these can only run inside wait().
    pool.wait();
    EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolRun, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 500;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&hits](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolErrors, ExceptionPropagatesFromWait)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 10; ++i) {
        pool.submit([&ran, i] {
            if (i == 4)
                throw std::runtime_error("config 4 asserted");
            ++ran;
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The failure must not wedge or cancel the rest of the sweep.
    EXPECT_EQ(ran.load(), 9);
    // The error was consumed; the pool is reusable.
    pool.submit([&ran] { ++ran; });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPoolErrors, ParallelForRethrowsAndCompletes)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallelFor(64,
                                  [&ran](std::size_t i) {
                                      if (i == 63)
                                          throw std::logic_error("boom");
                                      ++ran;
                                  }),
                 std::logic_error);
    EXPECT_EQ(ran.load(), 63);
}

// A task may fan out further tasks (the sweep does this when a config
// expands into per-workload runs).
TEST(ThreadPoolNesting, TasksSubmitTasks)
{
    for (unsigned threads : {1u, 4u}) {
        ThreadPool pool(threads);
        std::atomic<int> leaves{0};
        for (int outer = 0; outer < 8; ++outer) {
            pool.submit([&pool, &leaves] {
                for (int inner = 0; inner < 8; ++inner)
                    pool.submit([&leaves] { ++leaves; });
            });
        }
        pool.wait();
        EXPECT_EQ(leaves.load(), 64) << "threads=" << threads;
    }
}

TEST(ThreadPoolNesting, NestedParallelFor)
{
    ThreadPool pool(4);
    std::vector<std::array<int, 8>> grid(8);
    pool.parallelFor(grid.size(), [&](std::size_t row) {
        pool.parallelFor(8, [&grid, row](std::size_t col) {
            grid[row][col] = static_cast<int>(row * 8 + col);
        });
    });
    int expected = 0;
    for (const auto &row : grid)
        for (int v : row)
            EXPECT_EQ(v, expected++);
}

TEST(ThreadPoolStress, TenThousandNoops)
{
    ThreadPool pool(4);
    std::atomic<std::size_t> count{0};
    constexpr std::size_t n = 10'000;
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    pool.wait();
    EXPECT_EQ(count.load(), n);
}

// Destroying a pool with unfinished work must drain it, not drop it.
TEST(ThreadPoolShutdown, DestructorDrainsPendingTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&ran] { ++ran; });
    }
    EXPECT_EQ(ran.load(), 100);
}

} // namespace
