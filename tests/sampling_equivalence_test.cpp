// Statistical-equivalence tests for SMARTS-style sampled simulation
// (harness/sampling.hh): for every workload and both paper schemes,
// the sampled IPC estimate must land within its own reported 95%
// confidence interval of the exact run's IPC; sampled runs must stay
// deterministic across sweep thread counts; and the smoke sampling
// config must keep the detailed-simulation fraction small (that is the
// entire point of sampling).
//
// Exact mode is locked elsewhere: golden_table_test pins the fig11 and
// table3 text blocks byte-for-byte at 1/2/4 threads, so any sampled-
// mode change that leaked into the exact path would fail there.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "workloads/workloads.hh"

namespace {

using namespace rrs;
using namespace rrs::harness;

// Long enough that the exact run's cold-start ramp (which warmed
// sampled windows deliberately exclude) dilutes below the reported
// confidence interval.
constexpr std::uint64_t kCap = 200'000;

SamplingParams
testSampling()
{
    SamplingParams p;
    p.warm = 1024;
    p.detailed = 2048;
    p.period = 8192;
    p.fillInsts = 512;
    return p;
}

RunConfig
configFor(const std::string &scheme)
{
    RunConfig cfg = schemeConfig(scheme, 64);
    cfg.maxInsts = kCap;
    return cfg;
}

struct Case
{
    const char *workload;
    const char *scheme;
};

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const auto &w : workloads::allWorkloads()) {
        cases.push_back({w.name.c_str(), "baseline"});
        cases.push_back({w.name.c_str(), "reuse"});
    }
    return cases;
}

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    return std::string(info.param.workload) + "_" + info.param.scheme;
}

const workloads::Workload &
workloadNamed(const char *name)
{
    for (const auto &w : workloads::allWorkloads()) {
        if (w.name == name)
            return w;
    }
    rrs_fatal("no workload '%s'", name);
}

class SampledVsExact : public ::testing::TestWithParam<Case>
{
};

TEST_P(SampledVsExact, MeanIpcWithinReportedCi)
{
    const Case &c = GetParam();
    const workloads::Workload &w = workloadNamed(c.workload);

    RunConfig exact = configFor(c.scheme);
    Outcome exactOut = runOn(w, exact);
    ASSERT_FALSE(exactOut.sampled.enabled);
    const double exactIpc = exactOut.sim.ipc();
    ASSERT_GT(exactIpc, 0.0);

    RunConfig sampled = configFor(c.scheme);
    sampled.sampling = testSampling();
    Outcome sampledOut = runOn(w, sampled);
    ASSERT_TRUE(sampledOut.sampled.enabled);
    const SampledSummary &sm = sampledOut.sampled;

    EXPECT_GT(sm.windows, 1u);
    EXPECT_GT(sm.meanIpc, 0.0);
    EXPECT_GT(sm.ci95Ipc, 0.0);
    EXPECT_NEAR(sm.meanIpc, exactIpc, sm.ci95Ipc)
        << "sampled IPC estimate outside its own 95% CI of the exact "
        << "run (" << sm.windows << " windows, stddev " << sm.stddevIpc
        << ")";

    // The estimate's supporting statistics must be self-consistent.
    EXPECT_GT(sm.detailedInsts, 0u);
    EXPECT_GT(sm.detailedCycles, 0u);
    EXPECT_EQ(sm.detailedInsts, sampledOut.sim.committedInsts);
    EXPECT_EQ(sm.detailedCycles, sampledOut.sim.cycles);
    EXPECT_GE(sm.medianIpc, 0.0);
    EXPECT_EQ(sampledOut.reportedIpc(), sm.meanIpc);
    EXPECT_EQ(exactOut.reportedIpc(), exactIpc);
}

INSTANTIATE_TEST_SUITE_P(EveryWorkload, SampledVsExact,
                         ::testing::ValuesIn(allCases()), caseName);

// The smoke config (the bench `--sample` defaults) must simulate at
// most 25% of the instructions in detail; that bound is the speedup
// the sampled CI job banks on.
TEST(Sampling, SmokeConfigDetailedFractionAtMost25Pct)
{
    SamplingParams smoke;
    smoke.warm = 2048;
    smoke.detailed = 1024;
    smoke.period = 8192;

    RunConfig cfg = configFor("baseline");
    cfg.maxInsts = 20'000;
    cfg.sampling = smoke;
    Outcome out = runOn(workloads::allWorkloads().front(), cfg);
    ASSERT_TRUE(out.sampled.enabled);
    EXPECT_LE(out.sampled.detailedFraction(), 0.25);
    EXPECT_GT(out.sampled.detailedFraction(), 0.0);
}

// Sampled runs are covered by the same determinism contract as exact
// ones: a sampled sweep returns bit-identical outcomes for every
// thread count.
TEST(Sampling, SampledSweepDeterministicAcrossThreads)
{
    const auto &ws = workloads::allWorkloads();
    std::vector<SweepItem> items;
    for (std::size_t i = 0; i < 4 && i < ws.size(); ++i) {
        RunConfig cfg = configFor(i % 2 ? "reuse" : "baseline");
        cfg.maxInsts = 20'000;
        cfg.sampling = testSampling();
        items.push_back(sweepItem(ws[i], cfg));
    }

    std::vector<std::vector<Outcome>> byThreads;
    for (unsigned threads : {1u, 2u, 4u}) {
        SweepRunner runner(threads);
        byThreads.push_back(runner.outcomes(items));
    }
    for (std::size_t t = 1; t < byThreads.size(); ++t) {
        ASSERT_EQ(byThreads[0].size(), byThreads[t].size());
        for (std::size_t i = 0; i < byThreads[0].size(); ++i) {
            const SampledSummary &a = byThreads[0][i].sampled;
            const SampledSummary &b = byThreads[t][i].sampled;
            EXPECT_TRUE(b.enabled);
            EXPECT_EQ(a.windows, b.windows) << "run " << i;
            EXPECT_EQ(a.meanIpc, b.meanIpc) << "run " << i;
            EXPECT_EQ(a.stddevIpc, b.stddevIpc) << "run " << i;
            EXPECT_EQ(a.ci95Ipc, b.ci95Ipc) << "run " << i;
            EXPECT_EQ(a.medianIpc, b.medianIpc) << "run " << i;
            EXPECT_EQ(a.detailedInsts, b.detailedInsts) << "run " << i;
            EXPECT_EQ(a.detailedCycles, b.detailedCycles) << "run " << i;
            EXPECT_EQ(a.warmInsts, b.warmInsts) << "run " << i;
            EXPECT_EQ(a.skippedInsts, b.skippedInsts) << "run " << i;
            EXPECT_EQ(byThreads[0][i].sim.committedInsts,
                      byThreads[t][i].sim.committedInsts) << "run " << i;
            EXPECT_EQ(byThreads[0][i].sim.cycles,
                      byThreads[t][i].sim.cycles) << "run " << i;
        }
    }
}

// Re-running the same sampled config in one process must reproduce the
// identical summary (the trace cache hands every run the same shared
// trace; the controller owns all its per-run state).
TEST(Sampling, SampledRunIsRepeatable)
{
    RunConfig cfg = configFor("reuse");
    cfg.maxInsts = 20'000;
    cfg.sampling = testSampling();
    const workloads::Workload &w = workloadNamed("int_hash");
    Outcome a = runOn(w, cfg);
    Outcome b = runOn(w, cfg);
    EXPECT_EQ(a.sampled.meanIpc, b.sampled.meanIpc);
    EXPECT_EQ(a.sampled.ci95Ipc, b.sampled.ci95Ipc);
    EXPECT_EQ(a.sim.cycles, b.sim.cycles);
    EXPECT_EQ(a.sim.committedInsts, b.sim.committedInsts);
}

} // namespace
