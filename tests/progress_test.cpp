// Tests for the progress heartbeat's line renderer
// (obs/progress.hh formatLine): the counters-to-text mapping is a pure
// function, so the ETA guards — no estimate from a sub-second elapsed
// time, from zero completed runs, or past the end of the sweep, and
// never a negative ETA — pin down exactly.  The first heartbeat of a
// sweep used to divide by a near-zero elapsed time and print "ETA
// 9223372036854775807s"-class garbage.

#include <gtest/gtest.h>

#include <string>

#include "obs/progress.hh"

namespace {

using rrs::obs::ProgressReporter;
using Snapshot = ProgressReporter::Snapshot;

TEST(ProgressFormat, BasicLine)
{
    Snapshot s;
    s.completed = 12;
    s.total = 294;
    s.elapsedSeconds = 4.0;
    s.instsDone = 8'000'000;
    const std::string line = ProgressReporter::formatLine(s);
    EXPECT_EQ(line,
              "sweep 12/294 (4.1%) 3.0 runs/s 2.00 Minst/s ETA 94s");
}

TEST(ProgressFormat, NoEtaBeforeOneSecondElapsed)
{
    Snapshot s;
    s.completed = 3;
    s.total = 100;
    s.elapsedSeconds = 0.001;   // first heartbeat: rate is garbage
    const std::string line = ProgressReporter::formatLine(s);
    EXPECT_EQ(line.find("ETA"), std::string::npos) << line;
}

TEST(ProgressFormat, NoEtaWithZeroCompletedRuns)
{
    Snapshot s;
    s.completed = 0;
    s.total = 100;
    s.elapsedSeconds = 30.0;
    const std::string line = ProgressReporter::formatLine(s);
    EXPECT_EQ(line.find("ETA"), std::string::npos) << line;
    EXPECT_NE(line.find("sweep 0/100"), std::string::npos) << line;
}

TEST(ProgressFormat, NoEtaOnceComplete)
{
    Snapshot s;
    s.completed = 100;
    s.total = 100;
    s.elapsedSeconds = 12.0;
    const std::string line = ProgressReporter::formatLine(s);
    EXPECT_EQ(line.find("ETA"), std::string::npos) << line;
    EXPECT_NE(line.find("(100.0%)"), std::string::npos) << line;
}

TEST(ProgressFormat, ZeroElapsedNeverDivides)
{
    Snapshot s;
    s.completed = 5;
    s.total = 10;
    s.elapsedSeconds = 0.0;
    const std::string line = ProgressReporter::formatLine(s);
    EXPECT_EQ(line, "sweep 5/10 (50.0%) 0.0 runs/s 0.00 Minst/s");
}

TEST(ProgressFormat, EmptyTotalIsSafe)
{
    Snapshot s;   // all zero
    const std::string line = ProgressReporter::formatLine(s);
    EXPECT_EQ(line, "sweep 0/0 (0.0%) 0.0 runs/s 0.00 Minst/s");
}

TEST(ProgressFormat, LaneWorkAppended)
{
    Snapshot s;
    s.completed = 2;
    s.total = 4;
    s.elapsedSeconds = 2.0;
    s.laneWork = {"int_sort x reuse", "", "fp_fir x baseline"};
    const std::string line = ProgressReporter::formatLine(s);
    EXPECT_NE(line.find(" | int_sort x reuse, fp_fir x baseline"),
              std::string::npos)
        << line;
}

} // namespace
