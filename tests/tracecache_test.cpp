// Tests for the harness trace cache: hit/miss accounting, sharing of
// one immutable trace across requesters, cached-vs-fresh timing
// determinism, and the RRS_TRACE_DIR spill path including stale and
// corrupt file recovery.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "harness/experiment.hh"
#include "harness/tracecache.hh"
#include "trace/tracefile.hh"
#include "workloads/workloads.hh"

namespace {

using namespace rrs;
using harness::TraceCache;

constexpr std::uint64_t kCap = 10'000;

// A spill directory that is empty even when a previous run of this
// binary left files behind (TempDir is not per-invocation).
std::string
freshSpillDir(const char *name)
{
    const std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

TEST(TraceCache, MissThenHitSharesOneTrace)
{
    TraceCache cache;
    cache.setSpillDir("");  // in-memory only for this test
    const auto &w = workloads::workload("int_hash");

    trace::TracePtr first = cache.get(w, kCap);
    ASSERT_TRUE(first);
    EXPECT_EQ(first->size(), kCap);

    trace::TracePtr second = cache.get(w, kCap);
    // A hit returns the *same* shared trace, not an equal copy.
    EXPECT_EQ(first.get(), second.get());

    auto c = cache.counters();
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.capturedInsts, kCap);
    EXPECT_EQ(c.spillLoads, 0u);
    EXPECT_EQ(c.spillStores, 0u);
    // The capture packed its columns exactly once — the hit did not
    // re-pack (decode-once invariant), and the pack cost landed on
    // the capture side of the ledger.
    EXPECT_EQ(c.packedRecords, kCap);
    EXPECT_GT(c.packSecondsCapture, 0.0);
    EXPECT_EQ(c.packSecondsLoad, 0.0);
}

TEST(TraceCache, ZeroCapAndExplicitDefaultShareAnEntry)
{
    TraceCache cache;
    cache.setSpillDir("");
    const auto &w = workloads::workload("int_hash");

    trace::TracePtr byDefault = cache.get(w, 0);
    trace::TracePtr byValue = cache.get(w, w.defaultMaxInsts);
    EXPECT_EQ(byDefault.get(), byValue.get());

    auto c = cache.counters();
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.hits, 1u);
}

TEST(TraceCache, DistinctKeysCaptureSeparately)
{
    TraceCache cache;
    cache.setSpillDir("");
    const auto &w = workloads::workload("int_hash");
    const auto &v = workloads::workload("fp_fir");

    trace::TracePtr a = cache.get(w, kCap);
    trace::TracePtr b = cache.get(w, 2 * kCap);  // same workload, other cap
    trace::TracePtr c = cache.get(v, kCap);      // other workload
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());

    auto counters = cache.counters();
    EXPECT_EQ(counters.misses, 3u);
    EXPECT_EQ(counters.hits, 0u);
    EXPECT_EQ(counters.capturedInsts, kCap + 2 * kCap + kCap);
}

TEST(TraceCache, ConcurrentMissesCaptureOnce)
{
    TraceCache cache;
    cache.setSpillDir("");
    const auto &w = workloads::workload("media_g711");

    std::vector<trace::TracePtr> got(8);
    std::vector<std::thread> threads;
    threads.reserve(got.size());
    for (auto &slot : got)
        threads.emplace_back([&] { slot = cache.get(w, kCap); });
    for (auto &t : threads)
        t.join();

    for (const auto &t : got) {
        ASSERT_TRUE(t);
        EXPECT_EQ(t.get(), got[0].get());
    }
    auto c = cache.counters();
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.hits, got.size() - 1);
    EXPECT_EQ(c.capturedInsts, kCap);
}

TEST(TraceCache, ClearResetsEntriesAndCounters)
{
    TraceCache cache;
    cache.setSpillDir("");
    const auto &w = workloads::workload("int_hash");
    cache.get(w, kCap);
    cache.get(w, kCap);
    cache.clear();

    auto c = cache.counters();
    EXPECT_EQ(c.hits, 0u);
    EXPECT_EQ(c.misses, 0u);
    EXPECT_EQ(c.capturedInsts, 0u);

    cache.get(w, kCap);
    EXPECT_EQ(cache.counters().misses, 1u);  // entry was really dropped
}

TEST(TraceCache, CachedRunMatchesFreshRun)
{
    // The whole point of the cache: a timing run over a cached trace
    // must be bit-identical to one over a freshly captured trace.
    const auto &w = workloads::workload("fp_horner");
    harness::RunConfig cfg = harness::baselineConfig(64);
    cfg.maxInsts = 30'000;

    // First runOn captures into the process-wide cache; the second
    // replays the cached trace.  Identical outcomes or the sweep
    // determinism contract is broken.
    harness::Outcome fresh = harness::runOn(w, cfg);
    harness::Outcome cached = harness::runOn(w, cfg);

    EXPECT_EQ(fresh.sim.cycles, cached.sim.cycles);
    EXPECT_EQ(fresh.sim.committedInsts, cached.sim.committedInsts);
    EXPECT_EQ(fresh.sim.committedOps, cached.sim.committedOps);
    EXPECT_EQ(fresh.condAccuracy, cached.condAccuracy);
    EXPECT_EQ(fresh.mispredicts, cached.mispredicts);
    EXPECT_EQ(fresh.allocations, cached.allocations);
    EXPECT_EQ(fresh.renameStalls, cached.renameStalls);
}

TEST(TraceCache, SpillStoreAndLoadRoundTrip)
{
    const std::string dir = freshSpillDir("rrs_spill_rt");
    const auto &w = workloads::workload("int_sieve");

    TraceCache writer;
    writer.setSpillDir(dir);
    trace::TracePtr captured = writer.get(w, kCap);
    EXPECT_EQ(writer.counters().spillStores, 1u);
    EXPECT_EQ(writer.counters().spillLoads, 0u);

    // A second cache (≈ a later process) with the same dir loads the
    // spill instead of emulating.
    TraceCache reader;
    reader.setSpillDir(dir);
    trace::TracePtr loaded = reader.get(w, kCap);
    auto c = reader.counters();
    EXPECT_EQ(c.spillLoads, 1u);
    EXPECT_EQ(c.spillStores, 0u);
    EXPECT_EQ(c.capturedInsts, 0u);  // nothing was emulated
    // The loaded trace was packed on the load side of the ledger.
    EXPECT_EQ(c.packedRecords, kCap);
    EXPECT_EQ(c.packSecondsCapture, 0.0);
    EXPECT_GT(c.packSecondsLoad, 0.0);

    ASSERT_TRUE(loaded);
    EXPECT_EQ(loaded->digest(), captured->digest());
    EXPECT_EQ(loaded->size(), captured->size());
    EXPECT_EQ(loaded->sourceHash(), captured->sourceHash());
}

TEST(TraceCache, StaleSpillIsRecapturedNotTrusted)
{
    const std::string dir = freshSpillDir("rrs_spill_stale");
    const auto &w = workloads::workload("int_sieve");

    // Plant a file under the right name whose source hash doesn't
    // match the registry (as if the workload's assembly changed).
    trace::TracePtr real = workloads::captureTrace(w, kCap);
    trace::RecordedTrace forged(w.name, kCap,
                                workloads::sourceHash(w) ^ 1,
                                std::vector<trace::DynInst>(real->insts()));
    const std::string path =
        dir + "/" + trace::traceFileName(w.name, kCap);
    trace::writeTraceFile(path, forged);

    TraceCache cache;
    cache.setSpillDir(dir);
    trace::TracePtr t = cache.get(w, kCap);
    ASSERT_TRUE(t);
    EXPECT_EQ(t->sourceHash(), workloads::sourceHash(w));

    auto c = cache.counters();
    EXPECT_EQ(c.spillLoads, 0u);        // the stale file was not trusted
    EXPECT_EQ(c.capturedInsts, kCap);   // it recaptured instead
}

TEST(TraceCache, CorruptSpillIsRecapturedNotFatal)
{
    const std::string dir = freshSpillDir("rrs_spill_corrupt");
    const auto &w = workloads::workload("int_sieve");

    const std::string path =
        dir + "/" + trace::traceFileName(w.name, kCap);
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "this is not a trace file";
    }

    TraceCache cache;
    cache.setSpillDir(dir);
    trace::TracePtr t = cache.get(w, kCap);  // must not fatal
    ASSERT_TRUE(t);
    EXPECT_EQ(t->size(), kCap);
    EXPECT_EQ(cache.counters().spillLoads, 0u);
    EXPECT_EQ(cache.counters().capturedInsts, kCap);
}

TEST(TraceCache, UnwritableSpillDirDisablesSpillNotFatal)
{
    TraceCache cache;
    cache.setSpillDir("/nonexistent-spill-dir");
    const auto &w = workloads::workload("int_sieve");
    trace::TracePtr t = cache.get(w, kCap);  // must not fatal
    ASSERT_TRUE(t);
    EXPECT_EQ(cache.counters().spillStores, 0u);
    EXPECT_EQ(cache.counters().capturedInsts, kCap);
}

} // namespace
